package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(0); !errors.Is(err, ErrConfig) {
		t.Errorf("0 shards: %v", err)
	}
	if _, err := NewSharded(4, WithVectors(0)); !errors.Is(err, ErrConfig) {
		t.Errorf("bad shard options: %v", err)
	}
	s, err := NewSharded(3, WithOrder(10))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Errorf("shards = %d, want rounded to 4", s.Shards())
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestShardedBasicSemantics(t *testing.T) {
	s, err := NewSharded(4, WithOrder(12), WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	s.Process(outPkt(0, client, server, 4000, 80))
	if v := s.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped")
	}
	// Reply from another remote port still matches (same shard by key
	// symmetry).
	if v := s.Process(inPkt(time.Second, server, client, 9999, 4000)); v != filtering.Pass {
		t.Error("alternate-port reply dropped: flow split across shards?")
	}
	if v := s.Process(inPkt(2*time.Second, server, client, 80, 4001)); v != filtering.Drop {
		t.Error("unsolicited packet passed")
	}
	// Expiry still works through AdvanceTo.
	s.AdvanceTo(30 * time.Second)
	if v := s.Process(inPkt(30*time.Second, server, client, 80, 4000)); v != filtering.Drop {
		t.Error("mark survived T_e across shards")
	}
	c := s.Counters()
	if c.OutPackets != 1 || c.InPackets != 4 || c.InPassed != 2 || c.InDropped != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestShardedMemoryIsSumOfShards(t *testing.T) {
	s, err := NewSharded(4, WithOrder(12))
	if err != nil {
		t.Fatal(err)
	}
	single := MustNew(WithOrder(12))
	if got, want := s.MemoryBytes(), 4*single.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

// Differential: a sharded filter must agree with a single filter on every
// verdict for benign request/reply traffic (the partial-tuple key routes
// each flow wholly into one shard).
func TestShardedMatchesSingleOnFlows(t *testing.T) {
	single := MustNew(WithOrder(16), WithRotateEvery(5*time.Second), WithSeed(1))
	sharded, err := NewSharded(8, WithOrder(16), WithRotateEvery(5*time.Second), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	now := time.Duration(0)
	// Ground truth: last mark time per partial-tuple key. Packets whose
	// mark is younger than (k−1)·Δt MUST pass in both filters; packets
	// with no mark within k·Δt SHOULD drop in both, but hash-collision
	// admits are legal and differ between the two (the single filter is
	// fuller, and the shards use perturbed hash families), so those rare
	// disagreements are only counted.
	marks := make(map[packet.Key]time.Duration)
	collisions := 0
	for i := 0; i < 20000; i++ {
		now += time.Duration(r.Intn(20)) * time.Millisecond
		remote := packet.AddrFrom4(198, 51, 100, byte(r.Intn(100)))
		lport := uint16(1024 + r.Intn(500))
		var pkt packet.Packet
		if r.Bool(0.5) {
			pkt = outPkt(now, client, remote, lport, 80)
			marks[pkt.Tuple.OutgoingKey()] = now
		} else {
			pkt = inPkt(now, remote, client, 80, lport)
		}
		v1 := single.Process(pkt)
		v2 := sharded.Process(pkt)
		if v1 == v2 {
			continue
		}
		last, marked := marks[pkt.Tuple.IncomingKey()]
		age := now - last
		switch {
		case marked && age < 15*time.Second:
			t.Fatalf("packet %d (%v): fresh mark (age %v) but single=%v sharded=%v",
				i, pkt, age, v1, v2)
		case !marked || age >= 20*time.Second:
			collisions++ // a collision admit in one of the two: legal
		default:
			// Between (k−1)·Δt and k·Δt admission depends on rotation
			// phase, which is identical in both filters — they must
			// agree.
			t.Fatalf("packet %d (%v): phase-window divergence single=%v sharded=%v",
				i, pkt, v1, v2)
		}
	}
	if collisions > 10 {
		t.Errorf("%d collision disagreements; expected a handful at most", collisions)
	}
}

func TestShardedPunchHoleAndWouldAdmit(t *testing.T) {
	s, err := NewSharded(4, WithOrder(12), WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	hole := packet.Tuple{Src: server, Dst: client, SrcPort: 20, DstPort: 2000, Proto: packet.TCP}
	if s.WouldAdmit(hole) {
		t.Fatal("hole open before punch")
	}
	s.PunchHole(client, 2000, server, packet.TCP)
	if !s.WouldAdmit(hole) {
		t.Error("punched hole not visible via WouldAdmit")
	}
	if v := s.Process(packet.Packet{Tuple: hole, Dir: packet.Incoming, Flags: packet.SYN}); v != filtering.Pass {
		t.Error("punched connection dropped")
	}
}

func TestShardedConcurrent(t *testing.T) {
	s, err := NewSharded(8, WithOrder(14), WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint16(1000 * (w + 1))
			for i := 0; i < 2000; i++ {
				ts := time.Duration(i) * time.Millisecond
				s.Process(outPkt(ts, client, server, base+uint16(i%50), 80))
				if v := s.Process(inPkt(ts, server, client, 80, base+uint16(i%50))); v != filtering.Pass {
					t.Errorf("worker %d: reply dropped", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c := s.Counters()
	if c.OutPackets != 16000 || c.InPackets != 16000 || c.InDropped != 0 {
		t.Errorf("counters = %+v", c)
	}
}
