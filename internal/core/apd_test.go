package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

func TestBandwidthPolicyValidation(t *testing.T) {
	if _, err := NewBandwidthPolicy(0, time.Second); !errors.Is(err, ErrPolicyConfig) {
		t.Errorf("capacity 0: %v", err)
	}
	if _, err := NewBandwidthPolicy(1e6, 0); !errors.Is(err, ErrPolicyConfig) {
		t.Errorf("window 0: %v", err)
	}
	if _, err := NewBandwidthPolicy(1e6, time.Second); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestRatioPolicyValidation(t *testing.T) {
	if _, err := NewRatioPolicy(2, 1, time.Second); !errors.Is(err, ErrPolicyConfig) {
		t.Errorf("h <= l: %v", err)
	}
	if _, err := NewRatioPolicy(-1, 1, time.Second); !errors.Is(err, ErrPolicyConfig) {
		t.Errorf("negative l: %v", err)
	}
	if _, err := NewRatioPolicy(1, 3, 0); !errors.Is(err, ErrPolicyConfig) {
		t.Errorf("window 0: %v", err)
	}
	if _, err := NewRatioPolicy(1, 3, time.Second); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestBandwidthUtilization(t *testing.T) {
	// 1 Mbit/s link, 1 s window. 62500 incoming bytes/s = 0.5 Mbit/s.
	p, err := NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 125; i++ {
		p.Observe(packet.Packet{
			Time:   time.Duration(i) * 8 * time.Millisecond,
			Dir:    packet.Incoming,
			Length: 500,
		})
	}
	got := p.Utilization(time.Second)
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("Utilization = %v, want ~0.5", got)
	}
	if p.DropProbability(time.Second) != got {
		t.Error("DropProbability != Utilization")
	}
}

func TestBandwidthUtilizationClamped(t *testing.T) {
	p, err := NewBandwidthPolicy(1000, time.Second) // tiny link
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Observe(packet.Packet{Time: time.Duration(i) * time.Millisecond, Dir: packet.Incoming, Length: 1500})
	}
	if got := p.Utilization(100 * time.Millisecond); got != 1 {
		t.Errorf("Utilization = %v, want clamp at 1", got)
	}
}

func TestBandwidthIgnoresOutgoing(t *testing.T) {
	p, err := NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(packet.Packet{Dir: packet.Outgoing, Length: 10000})
	if got := p.Utilization(0); got != 0 {
		t.Errorf("outgoing bytes counted: %v", got)
	}
}

func TestBandwidthWindowSlides(t *testing.T) {
	p, err := NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(packet.Packet{Time: 0, Dir: packet.Incoming, Length: 50000})
	if p.Utilization(100*time.Millisecond) == 0 {
		t.Fatal("fresh bytes not visible")
	}
	// Two windows later the burst has aged out.
	if got := p.Utilization(3 * time.Second); got != 0 {
		t.Errorf("Utilization = %v after window slid past burst", got)
	}
}

func TestRatioPolicyPiecewise(t *testing.T) {
	mk := func(in, out int) *RatioPolicy {
		p, err := NewRatioPolicy(1, 3, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < out; i++ {
			p.Observe(packet.Packet{Dir: packet.Outgoing})
		}
		for i := 0; i < in; i++ {
			p.Observe(packet.Packet{Dir: packet.Incoming})
		}
		return p
	}
	tests := []struct {
		name    string
		in, out int
		want    float64
	}{
		{name: "below low", in: 5, out: 10, want: 0},    // r=0.5 < l=1
		{name: "at low", in: 10, out: 10, want: 0},      // r=1: (1-1)/2=0
		{name: "midpoint", in: 20, out: 10, want: 0.5},  // r=2
		{name: "at high", in: 30, out: 10, want: 1},     // r=3
		{name: "above high", in: 100, out: 10, want: 1}, // r=10
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := mk(tt.in, tt.out)
			if got := p.DropProbability(0); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("DropProbability = %v, want %v (r=%v)", got, tt.want, p.Ratio(0))
			}
		})
	}
}

func TestRatioPolicyNoOutgoing(t *testing.T) {
	p, err := NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// No traffic at all: ratio 0, probability 0.
	if got := p.DropProbability(0); got != 0 {
		t.Errorf("idle DropProbability = %v", got)
	}
	// Incoming-only traffic: ratio saturates at the high threshold.
	p.Observe(packet.Packet{Dir: packet.Incoming})
	if got := p.DropProbability(0); got != 1 {
		t.Errorf("incoming-only DropProbability = %v, want 1", got)
	}
}

func TestPolicyNames(t *testing.T) {
	bp, _ := NewBandwidthPolicy(1e6, time.Second)
	rp, _ := NewRatioPolicy(1, 3, time.Second)
	if bp.Name() != "apd-bandwidth" || rp.Name() != "apd-ratio" {
		t.Error("policy names wrong")
	}
}

// fixedPolicy is a test double with a constant drop probability.
type fixedPolicy struct{ p float64 }

func (f fixedPolicy) Observe(packet.Packet)                 {}
func (f fixedPolicy) DropProbability(time.Duration) float64 { return f.p }
func (f fixedPolicy) Name() string                          { return "fixed" }

func TestAPDZeroProbabilityAdmitsEverything(t *testing.T) {
	f := small(WithAPD(fixedPolicy{p: 0}))
	dropped := 0
	for i := 0; i < 500; i++ {
		if f.Process(inPkt(0, server, client, 80, uint16(i+1))) == filtering.Drop {
			dropped++
		}
	}
	if dropped != 0 {
		t.Errorf("p=0 APD dropped %d packets", dropped)
	}
	if f.APDSpared() != 500 {
		t.Errorf("APDSpared = %d", f.APDSpared())
	}
}

func TestAPDFullProbabilityDropsUnmatched(t *testing.T) {
	f := small(WithAPD(fixedPolicy{p: 1}))
	passed := 0
	for i := 0; i < 500; i++ {
		if f.Process(inPkt(0, server, client, 80, uint16(i+1))) == filtering.Pass {
			passed++
		}
	}
	if passed != 0 {
		t.Errorf("p=1 APD passed %d unmatched packets", passed)
	}
}

func TestAPDIntermediateProbability(t *testing.T) {
	f := small(WithAPD(fixedPolicy{p: 0.3}), WithSeed(7))
	const n = 20000
	dropped := 0
	for i := 0; i < n; i++ {
		pkt := inPkt(0, server, client, uint16(i%60000+1), uint16(i%60000+2))
		pkt.Tuple.Src = packet.Addr(uint32(i) * 2654435761)
		if f.Process(pkt) == filtering.Drop {
			dropped++
		}
	}
	got := float64(dropped) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("drop fraction = %v, want ~0.3", got)
	}
}

func TestAPDMatchedPacketsUnaffected(t *testing.T) {
	// APD only applies to packets the bitmap would drop; matched replies
	// always pass even at p=1.
	f := small(WithAPD(fixedPolicy{p: 1}))
	f.Process(outPkt(0, client, server, 4000, 80))
	if v := f.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("matched reply dropped under APD")
	}
}

func TestAPDSignalPacketsDoNotMark(t *testing.T) {
	// §5.3: outgoing SYN+ACK (the response a SYN scan elicits) must not
	// mark the bitmap of an APD-enabled filter; otherwise the scanner's
	// follow-up traffic would be admitted.
	f := small(WithAPD(fixedPolicy{p: 1}))
	synAck := outPkt(0, client, server, 80, 4000)
	synAck.Flags = packet.SYN | packet.ACK
	f.Process(synAck)
	if f.Marks() != 0 {
		t.Errorf("SYN+ACK marked the bitmap (%d marks)", f.Marks())
	}
	if v := f.Process(inPkt(time.Second, server, client, 4000, 80)); v != filtering.Drop {
		t.Error("traffic admitted through SYN+ACK-induced mark")
	}

	// RST and FIN+ACK likewise.
	rst := outPkt(2*time.Second, client, server, 81, 4000)
	rst.Flags = packet.RST
	f.Process(rst)
	finAck := outPkt(2*time.Second, client, server, 82, 4000)
	finAck.Flags = packet.FIN | packet.ACK
	f.Process(finAck)
	if f.Marks() != 0 {
		t.Errorf("signal packets marked the bitmap (%d marks)", f.Marks())
	}
}

func TestAPDBareSynAndFinStillMark(t *testing.T) {
	// A bare SYN (client actively opening) and bare FIN must still mark.
	f := small(WithAPD(fixedPolicy{p: 1}))
	syn := outPkt(0, client, server, 4000, 80)
	syn.Flags = packet.SYN
	f.Process(syn)
	if f.Marks() != 1 {
		t.Fatalf("bare SYN did not mark (marks=%d)", f.Marks())
	}
	if v := f.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply to bare SYN dropped")
	}

	fin := outPkt(2*time.Second, client, server, 4001, 80)
	fin.Flags = packet.FIN
	f.Process(fin)
	if f.Marks() != 2 {
		t.Errorf("bare FIN did not mark (marks=%d)", f.Marks())
	}
}

func TestNonAPDFilterMarksSignalPackets(t *testing.T) {
	// Without APD the paper's base design marks ALL outgoing TCP/UDP
	// packets, including signal packets.
	f := small()
	synAck := outPkt(0, client, server, 80, 4000)
	synAck.Flags = packet.SYN | packet.ACK
	f.Process(synAck)
	if f.Marks() != 1 {
		t.Errorf("non-APD filter skipped signal packet (marks=%d)", f.Marks())
	}
}

func TestAPDObservesBothDirections(t *testing.T) {
	rp, err := NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f := small(WithAPD(rp))
	// Balanced traffic keeps the ratio at 1 → drop probability 0, so an
	// unsolicited packet slips through.
	for i := 0; i < 10; i++ {
		f.Process(outPkt(0, client, server, uint16(5000+i), 80))
	}
	// 5 incoming (unmatched) → r = 5/10 < l=1 → p=0: all admitted.
	admitted := 0
	for i := 0; i < 5; i++ {
		if f.Process(inPkt(0, server, client, 9, uint16(100+i))) == filtering.Pass {
			admitted++
		}
	}
	if admitted != 5 {
		t.Errorf("admitted %d/5 under ratio below low threshold", admitted)
	}
	// Now flood incoming until the ratio exceeds h=3: 10 out, need >30
	// in. Each admitted flood packet is observed, pushing the ratio up
	// (dropped ones are not — they never reach the link); later packets
	// must be dropped.
	droppedLate := 0
	for i := 0; i < 100; i++ {
		if f.Process(inPkt(0, server, client, 9, uint16(200+i))) == filtering.Drop && i > 50 {
			droppedLate++
		}
	}
	if droppedLate < 40 {
		t.Errorf("late flood packets dropped: %d, want >=40", droppedLate)
	}
}
