package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// markFlows drives n distinct outgoing flows through f and returns their
// reply tuples (what the remote servers send back).
func markFlows(f filtering.PacketFilter, n int, seed uint64) []packet.Tuple {
	r := xrand.New(seed)
	replies := make([]packet.Tuple, 0, n)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Duration(r.Intn(90)) * time.Microsecond
		dst := packet.Addr(r.Uint32() | 1)
		sp, dp := uint16(1024+r.Intn(60000)), uint16(1+r.Intn(1024))
		f.Process(outPkt(now, client, dst, sp, dp))
		replies = append(replies, packet.Tuple{
			Src: dst, Dst: client, SrcPort: dp, DstPort: sp, Proto: packet.TCP,
		})
	}
	return replies
}

func mustSharded(t *testing.T, n int, opts ...Option) *Sharded {
	t.Helper()
	s, err := NewSharded(n, opts...)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return s
}

func mustSnapshot(t *testing.T, s Snapshottable) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSafeSnapshotRoundTrip(t *testing.T) {
	s := NewSafe(small(WithSeed(3)))
	replies := markFlows(s, 500, 11)

	g, err := ReadSafeSnapshot(bytes.NewReader(mustSnapshot(t, s)))
	if err != nil {
		t.Fatalf("ReadSafeSnapshot: %v", err)
	}
	if g.Stats().Marks != s.Stats().Marks || g.Counters() != s.Counters() {
		t.Errorf("state not restored: %+v vs %+v", g.Counters(), s.Counters())
	}
	for _, tup := range replies {
		if s.WouldAdmit(tup) != g.WouldAdmit(tup) {
			t.Fatalf("verdict divergence on %v", tup)
		}
	}
}

func TestShardedSnapshotRoundTrip(t *testing.T) {
	s := mustSharded(t, 4, WithOrder(12), WithVectors(3), WithHashes(2),
		WithRotateEvery(5*time.Second), WithSeed(7))
	replies := markFlows(s, 2000, 12)

	g, err := ReadShardedSnapshot(bytes.NewReader(mustSnapshot(t, s)))
	if err != nil {
		t.Fatalf("ReadShardedSnapshot: %v", err)
	}
	if g.Shards() != s.Shards() {
		t.Fatalf("shard count %d, want %d", g.Shards(), s.Shards())
	}
	if g.Stats().Marks != s.Stats().Marks || g.Counters() != s.Counters() {
		t.Errorf("aggregate state not restored: %+v vs %+v", g.Stats(), s.Stats())
	}
	// Flow routing and per-shard seeds must survive: identical verdicts on
	// both the marked flows and a random battery.
	r := xrand.New(99)
	for _, tup := range replies {
		if !g.WouldAdmit(tup) {
			t.Fatalf("restored sharded filter forgot flow %v", tup)
		}
	}
	for i := 0; i < 5000; i++ {
		tup := packet.Tuple{
			Src: packet.Addr(r.Uint32() | 1), Dst: client,
			SrcPort: uint16(1 + r.Intn(65535)), DstPort: uint16(1 + r.Intn(65535)),
			Proto: packet.TCP,
		}
		if s.WouldAdmit(tup) != g.WouldAdmit(tup) {
			t.Fatalf("verdict divergence on %v", tup)
		}
	}
}

func TestShardedSnapshotAPDReattach(t *testing.T) {
	s := mustSharded(t, 2, WithOrder(10), WithVectors(2), WithHashes(2),
		WithRotateEvery(time.Second))
	data := mustSnapshot(t, s)

	// A stateless policy may be shared; p=0 admits unmatched packets,
	// proving it took effect on the restored shards.
	g, err := ReadShardedSnapshot(bytes.NewReader(data), WithAPD(fixedPolicy{p: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if v := g.Process(inPkt(0, server, client, 80, 9999)); v != filtering.Pass {
		t.Error("APD option not applied on sharded restore")
	}

	// A stateful, cloneable policy is cloned per shard like NewSharded.
	p, err := NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardedSnapshot(bytes.NewReader(data), WithAPD(p)); err != nil {
		t.Errorf("cloneable APD policy rejected on restore: %v", err)
	}
}

// makeV1 re-encodes a v2 single-filter snapshot in the legacy v1 layout
// (bare header + raw vectors, no checksums) to exercise the
// backward-compat decoder without keeping a v1 writer around.
func makeV1(t *testing.T, f *Filter) []byte {
	t.Helper()
	data := mustSnapshot(t, f)
	var out bytes.Buffer
	var word [4]byte
	le := binary.LittleEndian
	le.PutUint32(word[:], snapshotMagicV1)
	out.Write(word[:])
	le.PutUint32(word[:], 1)
	out.Write(word[:])
	hdrOff := containerHeaderLen + 4
	out.Write(data[hdrOff : hdrOff+sectionHeaderLen])
	vecLen := (1 << f.Order()) / 8
	off := hdrOff + sectionHeaderLen + 4
	for i := 0; i < f.Vectors(); i++ {
		out.Write(data[off : off+vecLen]) // payload, dropping the v2 CRC
		off += vecLen + 4
	}
	return out.Bytes()
}

func TestSnapshotV1BackwardCompat(t *testing.T) {
	f := small(WithSeed(5))
	replies := markFlows(f, 300, 13)
	v1 := makeV1(t, f)

	g, err := ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("ReadSnapshot(v1): %v", err)
	}
	if g.Stats().Marks != f.Stats().Marks || g.Counters() != f.Counters() {
		t.Errorf("v1 state not restored: %+v vs %+v", g.Counters(), f.Counters())
	}
	for _, tup := range replies {
		if f.WouldAdmit(tup) != g.WouldAdmit(tup) {
			t.Fatalf("v1 verdict divergence on %v", tup)
		}
	}

	// ReadAnySnapshot handles v1 too and yields the plain flavor.
	any, err := ReadAnySnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := any.(*Filter); !ok {
		t.Errorf("ReadAnySnapshot(v1) = %T, want *Filter", any)
	}

	// v1 truncations must still fail cleanly.
	for _, n := range []int{8, 50, len(v1) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(v1[:n])); err == nil {
			t.Errorf("truncated v1 snapshot (%d bytes) accepted", n)
		}
	}
}

func TestSnapshotTrailingBytesRejected(t *testing.T) {
	f := small()
	sh := mustSharded(t, 2, WithOrder(10), WithVectors(2), WithHashes(2),
		WithRotateEvery(time.Second))
	cases := map[string]struct {
		data []byte
		read func([]byte) error
	}{
		"v2 filter": {mustSnapshot(t, f), func(b []byte) error {
			_, err := ReadSnapshot(bytes.NewReader(b))
			return err
		}},
		"v2 sharded": {mustSnapshot(t, sh), func(b []byte) error {
			_, err := ReadShardedSnapshot(bytes.NewReader(b))
			return err
		}},
		"v1": {makeV1(t, f), func(b []byte) error {
			_, err := ReadSnapshot(bytes.NewReader(b))
			return err
		}},
		"any": {mustSnapshot(t, sh), func(b []byte) error {
			_, err := ReadAnySnapshot(bytes.NewReader(b))
			return err
		}},
	}
	for name, tc := range cases {
		if err := tc.read(tc.data); err != nil {
			t.Errorf("%s: clean stream rejected: %v", name, err)
		}
		padded := append(bytes.Clone(tc.data), 0)
		if err := tc.read(padded); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: trailing byte gave %v, want ErrSnapshotCorrupt", name, err)
		}
		doubled := append(bytes.Clone(tc.data), tc.data...)
		if err := tc.read(doubled); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: concatenated streams gave %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

// rewriteHeaderField patches an int64 field of the v2 section header in
// place and fixes up the header checksum so only the semantic validation
// can reject the stream.
func rewriteHeaderField(data []byte, fieldOff int, val int64) {
	hdrOff := containerHeaderLen + 4
	le := binary.LittleEndian
	le.PutUint64(data[hdrOff+fieldOff:], uint64(val))
	le.PutUint32(data[hdrOff+sectionHeaderLen:],
		crc32.Checksum(data[hdrOff:hdrOff+sectionHeaderLen], castagnoli))
}

func TestSnapshotRotateDeadlineBound(t *testing.T) {
	f := small() // Δt = 5s
	data := mustSnapshot(t, f)

	// NextRotNs (offset 48) more than Δt after NowNs (offset 40) violates
	// the nextRotate ∈ (now, now+Δt] invariant and would extend mark
	// lifetime beyond T_e.
	bad := bytes.Clone(data)
	rewriteHeaderField(bad, 48, int64(6*time.Second))
	if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("nextRotate beyond Δt gave %v, want ErrSnapshotCorrupt", err)
	}

	// nextRotate not after now is equally invalid.
	bad = bytes.Clone(data)
	rewriteHeaderField(bad, 40, int64(2*time.Second))
	rewriteHeaderField(bad, 48, int64(time.Second))
	if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("nextRotate before now gave %v, want ErrSnapshotCorrupt", err)
	}

	// A negative clock must not sneak past the overflow guard.
	bad = bytes.Clone(data)
	rewriteHeaderField(bad, 40, -1)
	if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("negative clock gave %v, want ErrSnapshotCorrupt", err)
	}

	// The exact boundary nextRotate = now + Δt is legal.
	ok := bytes.Clone(data)
	rewriteHeaderField(ok, 40, 0)
	rewriteHeaderField(ok, 48, int64(5*time.Second))
	if _, err := ReadSnapshot(bytes.NewReader(ok)); err != nil {
		t.Errorf("boundary nextRotate = now+Δt rejected: %v", err)
	}
}

func TestSnapshotKindMismatch(t *testing.T) {
	f := small()
	sh := mustSharded(t, 2, WithOrder(10), WithVectors(2), WithHashes(2),
		WithRotateEvery(time.Second))

	if _, err := ReadSnapshot(bytes.NewReader(mustSnapshot(t, sh))); !errors.Is(err, ErrSnapshotKind) {
		t.Errorf("ReadSnapshot(sharded) = %v, want ErrSnapshotKind", err)
	}
	if _, err := ReadShardedSnapshot(bytes.NewReader(mustSnapshot(t, f))); !errors.Is(err, ErrSnapshotKind) {
		t.Errorf("ReadShardedSnapshot(filter) = %v, want ErrSnapshotKind", err)
	}
	if _, err := ReadShardedSnapshot(bytes.NewReader(makeV1(t, f))); !errors.Is(err, ErrSnapshotKind) {
		t.Errorf("ReadShardedSnapshot(v1) = %v, want ErrSnapshotKind", err)
	}
}

func TestReadAnySnapshotFlavors(t *testing.T) {
	f := small()
	sh := mustSharded(t, 4, WithOrder(10), WithVectors(2), WithHashes(2),
		WithRotateEvery(time.Second))

	got, err := ReadAnySnapshot(bytes.NewReader(mustSnapshot(t, f)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(*Filter); !ok {
		t.Errorf("filter stream restored as %T", got)
	}

	got, err = ReadAnySnapshot(bytes.NewReader(mustSnapshot(t, sh)))
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := got.(*Sharded)
	if !ok {
		t.Fatalf("sharded stream restored as %T", got)
	}
	if restored.Shards() != 4 {
		t.Errorf("restored %d shards, want 4", restored.Shards())
	}
}

// TestSnapshotCrossFlavorEquivalence is the 100K-packet differential:
// every flavor sees the same traffic, is snapshotted and restored, and
// each restored filter must be verdict-identical to its live counterpart —
// and all flavors must agree on the flows that were actually marked.
func TestSnapshotCrossFlavorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("100K-packet differential")
	}
	opts := []Option{WithOrder(16), WithVectors(4), WithHashes(3),
		WithRotateEvery(5 * time.Second), WithSeed(21)}
	plain := MustNew(opts...)
	safe := NewSafe(MustNew(opts...))
	sharded := mustSharded(t, 4, opts...)
	flavors := []struct {
		name    string
		live    Snapshottable
		restore func([]byte) (Snapshottable, error)
	}{
		{"filter", plain, func(b []byte) (Snapshottable, error) {
			return ReadSnapshot(bytes.NewReader(b))
		}},
		{"safe", safe, func(b []byte) (Snapshottable, error) {
			return ReadSafeSnapshot(bytes.NewReader(b))
		}},
		{"sharded", sharded, func(b []byte) (Snapshottable, error) {
			return ReadAnySnapshot(bytes.NewReader(b))
		}},
	}

	const packets = 100_000
	r := xrand.New(77)
	now := time.Duration(0)
	probes := make([]packet.Tuple, 0, packets/10)
	for i := 0; i < packets; i++ {
		now += time.Duration(r.Intn(50)) * time.Microsecond
		dst := packet.Addr(r.Uint32() | 1)
		sp, dp := uint16(1024+r.Intn(60000)), uint16(1+r.Intn(1024))
		pkt := outPkt(now, client, dst, sp, dp)
		for _, fl := range flavors {
			fl.live.Process(pkt)
		}
		if i%10 == 0 {
			probes = append(probes, packet.Tuple{
				Src: dst, Dst: client, SrcPort: dp, DstPort: sp, Proto: packet.TCP,
			})
		}
	}

	restored := make([]Snapshottable, len(flavors))
	for i, fl := range flavors {
		g, err := fl.restore(mustSnapshot(t, fl.live))
		if err != nil {
			t.Fatalf("%s: restore: %v", fl.name, err)
		}
		restored[i] = g
		if g.Stats().Marks != fl.live.Stats().Marks {
			t.Errorf("%s: marks %d != %d", fl.name, g.Stats().Marks, fl.live.Stats().Marks)
		}
	}
	for _, tup := range probes {
		for i, fl := range flavors {
			if !restored[i].(interface{ WouldAdmit(packet.Tuple) bool }).WouldAdmit(tup) {
				t.Fatalf("%s: restored filter forgot marked flow %v", fl.name, tup)
			}
		}
	}
	// Random battery: each restored flavor must match its own live filter
	// bit-for-bit (false positives included).
	type admitter interface{ WouldAdmit(packet.Tuple) bool }
	for i := 0; i < 20_000; i++ {
		tup := packet.Tuple{
			Src: packet.Addr(r.Uint32() | 1), Dst: client,
			SrcPort: uint16(1 + r.Intn(65535)), DstPort: uint16(1 + r.Intn(65535)),
			Proto: packet.TCP,
		}
		for j, fl := range flavors {
			if fl.live.(admitter).WouldAdmit(tup) != restored[j].(admitter).WouldAdmit(tup) {
				t.Fatalf("%s: verdict divergence on %v", fl.name, tup)
			}
		}
	}
}
