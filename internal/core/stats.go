package core

import (
	"fmt"
	"strings"
	"time"

	"bitmapfilter/internal/filtering"
)

// Stats is a point-in-time introspection snapshot of a Filter, suitable
// for metrics export and operator dashboards.
type Stats struct {
	// Configuration.
	Order       uint
	Vectors     int
	Hashes      int
	RotateEvery time.Duration
	ExpiryTimer time.Duration
	MemoryBytes uint64

	// Clock state.
	Now          time.Duration
	NextRotation time.Duration
	CurrentIndex int
	Rotations    uint64

	// Bitmap state.
	Marks uint64
	// VectorUtilization holds the fill fraction of every vector, index
	// 0 = vector 0 (CurrentIndex names the one lookups use).
	VectorUtilization []float64
	// Utilization is the current vector's fill fraction (U in §4.1).
	Utilization float64
	// PenetrationProbability is U^m (Equation 1).
	PenetrationProbability float64

	// Traffic counters.
	Counters  filtering.Counters
	APDSpared uint64

	// APD state (§5.3). APDEnabled reports whether a DropPolicy is
	// attached; APDPolicy is its Name; APDDropProbability is the
	// policy's drop probability for an unmatched incoming packet at the
	// snapshot's Now (on a Sharded aggregate, the mean across shards).
	APDEnabled         bool
	APDPolicy          string
	APDDropProbability float64
}

// Stats collects a snapshot. It does not advance the clock; call AdvanceTo
// first if you want rotations due "now" reflected.
func (f *Filter) Stats() Stats {
	s := Stats{
		Order:                  f.cfg.order,
		Vectors:                f.cfg.vectors,
		Hashes:                 f.cfg.hashes,
		RotateEvery:            f.cfg.rotateEvery,
		ExpiryTimer:            f.ExpiryTimer(),
		MemoryBytes:            f.MemoryBytes(),
		Now:                    f.now,
		NextRotation:           f.nextRotate,
		CurrentIndex:           f.idx,
		Rotations:              f.rotations,
		Marks:                  f.marks,
		VectorUtilization:      make([]float64, len(f.vectors)),
		Utilization:            f.Utilization(),
		PenetrationProbability: f.PenetrationProbability(),
		Counters:               f.counters,
		APDSpared:              f.apdSpared,
	}
	for i, v := range f.vectors {
		s.VectorUtilization[i] = v.Utilization()
	}
	if f.cfg.apd != nil {
		s.APDEnabled = true
		s.APDPolicy = f.cfg.apd.Name()
		s.APDDropProbability = f.cfg.apd.DropProbability(f.now)
	}
	return s
}

// String renders the snapshot as a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bitmap{%dx%d,m=%d,dt=%v} mem=%dB Te=%v\n",
		s.Vectors, s.Order, s.Hashes, s.RotateEvery, s.MemoryBytes, s.ExpiryTimer)
	fmt.Fprintf(&b, "clock: now=%v next-rotation=%v rotations=%d current=%d\n",
		s.Now, s.NextRotation, s.Rotations, s.CurrentIndex)
	fmt.Fprintf(&b, "bitmap: marks=%d U=%.6f p=%.3e vectors=", s.Marks, s.Utilization, s.PenetrationProbability)
	for i, u := range s.VectorUtilization {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4f", u)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "traffic: out=%d in=%d passed=%d dropped=%d apd-spared=%d",
		s.Counters.OutPackets, s.Counters.InPackets,
		s.Counters.InPassed, s.Counters.InDropped, s.APDSpared)
	if s.APDEnabled {
		fmt.Fprintf(&b, "\napd: policy=%s p(drop)=%.4f", s.APDPolicy, s.APDDropProbability)
	}
	return b.String()
}
