package core

import (
	"bitmapfilter/internal/bitvector"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// This file implements the batch-coalesced data plane: inside a
// rotation-free segment of a batch, every packet's m masked hash indexes
// are flattened into (word, mask, position) entries, stably sorted by
// word, and replayed as a single sequential sweep over the current
// vector's word array. The sweep is exact — within one word, entries are
// replayed in packet order, so an incoming packet observes precisely the
// marks of the outgoing packets before it — but the bitmap is touched in
// ascending word order, which turns the per-packet random walks of the
// scalar path into a few prefetch-friendly passes (one sweep over the
// current vector plus one SetWords pass per marked vector).
//
// Segmentation (see processBatch) guarantees no rotation fires inside a
// sweep, so the current index and the vector contents seen by the sweep
// are exactly those the per-packet path would see. Everything that is
// order-sensitive but does not touch the bitmap — counters, APD
// observations and coin flips, the marks counter — runs in a final
// per-packet pass in input order, so verdicts, statistics and the APD
// random stream stay byte-identical to sequential Process calls (pinned
// by the kernel differential tests).

// batchSortMin is the batch length below which processBatch stays on the
// per-packet path: the sort only pays for itself once enough word/mask
// pairs land on shared cache lines and pages.
const batchSortMin = 32

// sweepMinWords is the SweepAuto threshold: vectors below this word count
// stay on the per-packet path. 2^22 words = 32 MiB per vector (order 28),
// the regime where a per-packet random walk misses typical last-level
// caches and the sort starts buying back DRAM latency. Measurement on the
// growth machine (105 MiB L3): at order <= 24 the sorted sweep costs
// ~40 ns/pkt against random accesses that are nearly free, so engaging it
// for cache-resident bitmaps is a strict loss; see DESIGN.md and the
// BENCH trajectory.
const sweepMinWords = 1 << 22

// sweepEnabled reports whether ProcessBatchInto should run eligible
// batches through the sorted word-sweep. The sweep exists for coalesced
// kernels only; scalar mode is the pinned per-packet reference.
//
//bf:hotpath
func (f *Filter) sweepEnabled() bool {
	if f.cfg.kernels != KernelCoalesced {
		return false
	}
	switch f.cfg.sweep {
	case SweepAlways:
		return true
	case SweepNever:
		return false
	default:
		return f.vectors[f.idx].Words() >= sweepMinWords
	}
}

// batchEntry is one (word, mask) touch of the current vector, tagged with
// the packet that produced it: pos = packet index << 1 | isMark.
type batchEntry struct {
	mask uint64
	word uint32
	pos  uint32
}

// sweepScratch holds the per-segment buffers of processSegment. Each
// Filter owns one and reuses it across batches, so the steady state
// allocates nothing (the //bf:hotpath contract).
type sweepScratch struct {
	entries []batchEntry         // flattened (word, mask, pos) touches
	aux     []batchEntry         // radix-sort ping-pong buffer
	matched []bool               // per incoming packet: all bits present
	marked  []bool               // per outgoing packet: marks the bitmap
	pairs   []bitvector.WordMask // collapsed (word, mask) marks
}

// radixSortByWord stably sorts ents by word with LSD byte passes,
// ping-ponging between ents and aux (len(aux) >= len(ents)), and returns
// the slice holding the sorted result. Stability is what preserves packet
// order within a word, which the sweep's correctness rests on. Passes
// whose byte is constant across all entries (common for high bytes at
// small orders) are skipped.
//
//bf:hotpath
func radixSortByWord(ents, aux []batchEntry, maxWord uint32) []batchEntry {
	if len(ents) == 0 {
		return ents
	}
	var cnt [256]int
	for shift := uint(0); maxWord>>shift != 0; shift += 8 {
		clear(cnt[:])
		for i := range ents {
			cnt[(ents[i].word>>shift)&0xff]++
		}
		if cnt[(ents[0].word>>shift)&0xff] == len(ents) {
			continue // every entry shares this byte: the pass is an identity
		}
		sum := 0
		for b := 0; b < 256; b++ {
			c := cnt[b]
			cnt[b] = sum
			sum += c
		}
		for i := range ents {
			b := (ents[i].word >> shift) & 0xff
			aux[cnt[b]] = ents[i]
			cnt[b]++
		}
		ents, aux = aux, ents
	}
	return ents
}

// processSegment fills out (same length as pkts) for a rotation-free run
// of packets: no packet's timestamp reaches f.nextRotate, so the current
// index is fixed for the whole segment.
//
//bf:hotpath
func (f *Filter) processSegment(pkts []packet.Packet, out []filtering.Verdict) {
	sc := &f.sweep
	m := f.cfg.hashes
	sc.entries = scratchSlice(sc.entries, len(pkts)*m) //bf:allow escapecheck pooled sweep scratch grows to the high-water batch size once, then is reused
	sc.aux = scratchSlice(sc.aux, len(pkts)*m)         //bf:allow escapecheck pooled sweep scratch grows to the high-water batch size once, then is reused
	sc.matched = scratchSlice(sc.matched, len(pkts))   //bf:allow escapecheck pooled sweep scratch grows to the high-water batch size once, then is reused
	sc.marked = scratchSlice(sc.marked, len(pkts))     //bf:allow escapecheck pooled sweep scratch grows to the high-water batch size once, then is reused
	sc.pairs = scratchSlice(sc.pairs, len(pkts)*m)     //bf:allow escapecheck pooled sweep scratch grows to the high-water batch size once, then is reused

	// Phase 1: hash every packet once and flatten its m index touches
	// into tagged entries. Entries are emitted in packet order, which the
	// stable sort below preserves within each word.
	cur := f.vectors[f.idx]
	maxTime := f.now
	ne := 0
	for i := range pkts {
		p := &pkts[i]
		if p.Time > maxTime {
			maxTime = p.Time
		}
		var tag uint32
		if p.Dir == packet.Outgoing {
			// Under APD, TCP signal packets do not mark (§5.3).
			sc.marked[i] = f.cfg.apd == nil || !p.IsSignal()
			if !sc.marked[i] {
				continue
			}
			tag = uint32(i)<<1 | 1
		} else {
			sc.matched[i] = true
			tag = uint32(i) << 1
		}
		k := f.key(*p)
		f.scratch = f.hashes.IndexesFixed(f.scratch[:0], k.lo, k.hi, k.n)
		for _, h := range f.scratch {
			w, b := cur.Split(h)
			sc.entries[ne] = batchEntry{mask: b, word: w, pos: tag}
			ne++
		}
	}

	// Phase 2: sort by word and sweep the current vector once. Within a
	// word group, marks accumulate into acc in packet order and lookups
	// compare against acc, so each lookup sees exactly the marks of
	// earlier packets. Marks also collapse into one WordMask per distinct
	// word, applied afterwards with one sequential SetWords pass per
	// vector (count deltas computed against each vector's own words).
	sorted := radixSortByWord(sc.entries[:ne], sc.aux[:ne], uint32(cur.Words()-1))
	np := 0
	for e := 0; e < ne; {
		w := sorted[e].word
		acc := cur.Word(w)
		markAcc := uint64(0)
		for ; e < ne && sorted[e].word == w; e++ {
			en := &sorted[e]
			if en.pos&1 != 0 {
				acc |= en.mask
				markAcc |= en.mask
			} else if acc&en.mask != en.mask {
				sc.matched[en.pos>>1] = false
			}
		}
		if markAcc != 0 {
			sc.pairs[np] = bitvector.WordMask{Word: w, Mask: markAcc}
			np++
		}
	}
	if np > 0 {
		if f.cfg.markPolicy == MarkCurrentOnly {
			cur.SetWords(sc.pairs[:np])
		} else {
			for _, v := range f.vectors {
				v.SetWords(sc.pairs[:np])
			}
		}
	}

	// Phase 3: verdicts, counters and APD in input order — the exact
	// tail of process() with the bitmap touches factored out.
	for i := range pkts {
		p := pkts[i]
		if p.Dir == packet.Outgoing {
			if sc.marked[i] {
				f.marks++
			}
			if f.cfg.apd != nil {
				f.cfg.apd.Observe(p)
			}
			f.counters.Count(p, filtering.Pass)
			out[i] = filtering.Pass
			continue
		}
		v := filtering.Pass
		if !sc.matched[i] {
			v = filtering.Drop
			if f.cfg.apd != nil {
				if !f.rng.Bool(f.cfg.apd.DropProbability(p.Time)) {
					v = filtering.Pass
					f.apdSpared++
				}
			}
		}
		if v == filtering.Pass && f.cfg.apd != nil {
			f.cfg.apd.Observe(p)
		}
		f.counters.Count(p, v)
		out[i] = v
	}

	// The rotation clock advances exactly as far as the per-packet path
	// would have moved it; maxTime < f.nextRotate by segment construction,
	// so this never fires a rotation.
	f.now = maxTime
}
