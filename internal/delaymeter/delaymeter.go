// Package delaymeter implements the out-in packet delay measurement
// procedure of §3.2 of the paper:
//
//  1. On an outgoing packet with tuple τ_out, record (or refresh) the tuple
//     with its timestamp t.
//  2. On an incoming packet with tuple τ_in, if the inverse tuple τ_in⁻¹ is
//     recorded with timestamp t₀, report the delay t − t₀ and refresh the
//     record.
//  3. Records older than an expiry timer T_e are deleted (the paper uses
//     T_e = 600 s for the Figure 2-b measurement) to bound the port-reuse
//     ambiguity.
//
// The meter feeds the Figure 2-b histogram and Figure 2-c CDF experiments.
package delaymeter

import (
	"errors"
	"fmt"
	"time"

	"bitmapfilter/internal/packet"
)

// DefaultExpiry is the paper's measurement expiry timer ("we use a large
// timer, T_e = 600 seconds, to handle expired address tuples").
const DefaultExpiry = 600 * time.Second

// ErrExpiry is returned by New for a non-positive expiry.
var ErrExpiry = errors.New("delaymeter: expiry must be positive")

// Meter measures out-in packet delays over a packet stream. It is not safe
// for concurrent use.
type Meter struct {
	expiry  time.Duration
	tuples  map[packet.Tuple]time.Duration
	now     time.Duration
	nextGC  time.Duration
	matched uint64
	missed  uint64
}

// New returns a meter with the given record expiry.
func New(expiry time.Duration) (*Meter, error) {
	if expiry <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrExpiry, expiry)
	}
	return &Meter{
		expiry: expiry,
		tuples: make(map[packet.Tuple]time.Duration, 1<<12),
		nextGC: expiry,
	}, nil
}

// MustNew is New for statically known arguments; it panics on error.
func MustNew(expiry time.Duration) *Meter {
	m, err := New(expiry)
	if err != nil {
		panic(err)
	}
	return m
}

// Observe feeds one packet through the meter. For incoming packets whose
// inverse tuple is known (and fresh), it returns the out-in delay and
// ok=true.
func (m *Meter) Observe(pkt packet.Packet) (delay time.Duration, ok bool) {
	if pkt.Time > m.now {
		m.now = pkt.Time
	}
	m.maybeGC()

	if pkt.Dir == packet.Outgoing {
		m.tuples[pkt.Tuple] = pkt.Time
		return 0, false
	}

	inverse := pkt.Tuple.Reverse()
	t0, found := m.tuples[inverse]
	if !found || pkt.Time-t0 > m.expiry {
		if found {
			delete(m.tuples, inverse)
		}
		m.missed++
		return 0, false
	}
	m.matched++
	// Per the paper's procedure only outgoing packets update the record,
	// so every reply in a burst measures against the same request.
	return pkt.Time - t0, true
}

// Matched returns the number of incoming packets with a measured delay.
func (m *Meter) Matched() uint64 { return m.matched }

// Missed returns the number of incoming packets with no (fresh) record.
func (m *Meter) Missed() uint64 { return m.missed }

// Live returns the number of tuples currently tracked.
func (m *Meter) Live() int { return len(m.tuples) }

// maybeGC sweeps expired records once per expiry period so the map tracks
// active tuples only (the paper's step 3).
func (m *Meter) maybeGC() {
	if m.now < m.nextGC {
		return
	}
	cutoff := m.now - m.expiry
	for tup, t0 := range m.tuples {
		if t0 < cutoff {
			delete(m.tuples, tup)
		}
	}
	m.nextGC = m.now + m.expiry
}
