package delaymeter

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/packet"
)

var (
	client = packet.AddrFrom4(10, 0, 0, 1)
	server = packet.AddrFrom4(198, 51, 100, 7)
)

func out(t time.Duration, sp, dp uint16) packet.Packet {
	return packet.Packet{
		Time:  t,
		Tuple: packet.Tuple{Src: client, Dst: server, SrcPort: sp, DstPort: dp, Proto: packet.TCP},
		Dir:   packet.Outgoing,
	}
}

func in(t time.Duration, sp, dp uint16) packet.Packet {
	return packet.Packet{
		Time:  t,
		Tuple: packet.Tuple{Src: server, Dst: client, SrcPort: sp, DstPort: dp, Proto: packet.TCP},
		Dir:   packet.Incoming,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); !errors.Is(err, ErrExpiry) {
		t.Errorf("New(0) error = %v", err)
	}
	if _, err := New(-time.Second); !errors.Is(err, ErrExpiry) {
		t.Errorf("New(-1s) error = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestBasicDelay(t *testing.T) {
	m := MustNew(DefaultExpiry)
	if _, ok := m.Observe(out(time.Second, 4000, 80)); ok {
		t.Error("outgoing packet reported a delay")
	}
	d, ok := m.Observe(in(1500*time.Millisecond, 80, 4000))
	if !ok {
		t.Fatal("matched reply not measured")
	}
	if d != 500*time.Millisecond {
		t.Errorf("delay = %v", d)
	}
	if m.Matched() != 1 || m.Missed() != 0 {
		t.Errorf("matched=%d missed=%d", m.Matched(), m.Missed())
	}
}

func TestUnknownTupleMissed(t *testing.T) {
	m := MustNew(DefaultExpiry)
	if _, ok := m.Observe(in(time.Second, 80, 4000)); ok {
		t.Error("unknown incoming tuple measured")
	}
	if m.Missed() != 1 {
		t.Errorf("Missed = %d", m.Missed())
	}
}

func TestOutgoingRefreshesTimestamp(t *testing.T) {
	m := MustNew(DefaultExpiry)
	m.Observe(out(0, 4000, 80))
	m.Observe(out(10*time.Second, 4000, 80))
	d, ok := m.Observe(in(11*time.Second, 80, 4000))
	if !ok || d != time.Second {
		t.Errorf("delay = %v, ok = %v; want 1s from refreshed record", d, ok)
	}
}

func TestIncomingDoesNotRefresh(t *testing.T) {
	// §3.2 step 1 updates only on outgoing packets: a reply burst all
	// measures against the same request.
	m := MustNew(DefaultExpiry)
	m.Observe(out(0, 4000, 80))
	d1, _ := m.Observe(in(time.Second, 80, 4000))
	d2, ok := m.Observe(in(3*time.Second, 80, 4000))
	if !ok {
		t.Fatal("second reply unmatched")
	}
	if d1 != time.Second || d2 != 3*time.Second {
		t.Errorf("delays = %v, %v", d1, d2)
	}
}

func TestExpiryDropsStaleRecords(t *testing.T) {
	m := MustNew(30 * time.Second)
	m.Observe(out(0, 4000, 80))
	if _, ok := m.Observe(in(31*time.Second, 80, 4000)); ok {
		t.Error("stale record matched past expiry")
	}
	if m.Missed() != 1 {
		t.Errorf("Missed = %d", m.Missed())
	}
	// The stale record was evicted: a subsequent incoming is also a miss.
	if _, ok := m.Observe(in(32*time.Second, 80, 4000)); ok {
		t.Error("evicted record matched")
	}
}

func TestGCShrinksLiveSet(t *testing.T) {
	m := MustNew(10 * time.Second)
	for i := 0; i < 500; i++ {
		m.Observe(out(0, uint16(1000+i), 80))
	}
	if m.Live() != 500 {
		t.Fatalf("Live = %d", m.Live())
	}
	// Advance far beyond the expiry: the sweep runs and clears all.
	m.Observe(out(25*time.Second, 9999, 80))
	if m.Live() > 1 {
		t.Errorf("Live = %d after GC", m.Live())
	}
}

func TestPortReuseScenario(t *testing.T) {
	// A recycled local port 60 s later measures a 60 s delay against the
	// old record if the new connection has not yet sent outgoing
	// traffic; this is the Figure 2-b peak mechanism.
	m := MustNew(DefaultExpiry)
	m.Observe(out(0, 4000, 80))
	d, ok := m.Observe(in(60*time.Second, 80, 4000))
	if !ok || d != 60*time.Second {
		t.Errorf("port-reuse delay = %v, ok = %v", d, ok)
	}
}

func TestDistinctTuplesIndependent(t *testing.T) {
	m := MustNew(DefaultExpiry)
	m.Observe(out(0, 4000, 80))
	m.Observe(out(time.Second, 4001, 80))
	d, ok := m.Observe(in(2*time.Second, 80, 4001))
	if !ok || d != time.Second {
		t.Errorf("tuple 4001 delay = %v", d)
	}
	d, ok = m.Observe(in(3*time.Second, 80, 4000))
	if !ok || d != 3*time.Second {
		t.Errorf("tuple 4000 delay = %v", d)
	}
}
