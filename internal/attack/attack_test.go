package attack

import (
	"errors"
	"math"
	"testing"
	"time"

	"bitmapfilter/internal/packet"
)

func subnets() []packet.Prefix {
	return []packet.Prefix{
		packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 24),
		packet.PrefixFrom(packet.AddrFrom4(10, 10, 1, 0), 24),
	}
}

func validScan() RandomScanConfig {
	return RandomScanConfig{
		Seed:     1,
		Rate:     1000,
		Start:    5 * time.Second,
		Duration: 10 * time.Second,
		Subnets:  subnets(),
	}
}

func TestRandomScanValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*RandomScanConfig)
	}{
		{name: "zero rate", mut: func(c *RandomScanConfig) { c.Rate = 0 }},
		{name: "zero duration", mut: func(c *RandomScanConfig) { c.Duration = 0 }},
		{name: "negative start", mut: func(c *RandomScanConfig) { c.Start = -1 }},
		{name: "no subnets", mut: func(c *RandomScanConfig) { c.Subnets = nil }},
		{name: "bad udp fraction", mut: func(c *RandomScanConfig) { c.UDPFraction = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validScan()
			tt.mut(&cfg)
			if _, err := NewRandomScan(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("error = %v, want ErrConfig", err)
			}
		})
	}
}

func TestRandomScanProperties(t *testing.T) {
	cfg := validScan()
	cfg.UDPFraction = 0.25
	a, err := NewRandomScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		count, udp int
		last       time.Duration
	)
	for {
		pkt, ok := a.Next()
		if !ok {
			break
		}
		count++
		if pkt.Time < cfg.Start || pkt.Time >= cfg.Start+cfg.Duration {
			t.Fatalf("packet outside window: %v", pkt.Time)
		}
		if pkt.Time < last {
			t.Fatal("out of order")
		}
		last = pkt.Time
		if pkt.Dir != packet.Incoming {
			t.Fatal("scan packet not incoming")
		}
		found := false
		for _, s := range cfg.Subnets {
			if s.Contains(pkt.Tuple.Dst) {
				found = true
			}
		}
		if !found {
			t.Fatalf("destination %v outside subnets", pkt.Tuple.Dst)
		}
		if pkt.Tuple.Proto == packet.UDP {
			udp++
			if pkt.Flags != 0 {
				t.Fatal("UDP scan with TCP flags")
			}
		} else if pkt.Flags != packet.SYN {
			t.Fatalf("TCP scan flags = %v", pkt.Flags)
		}
	}
	// ~1000 pps for 10 s.
	if count < 8000 || count > 12000 {
		t.Errorf("emitted %d packets, want ~10000", count)
	}
	if a.Emitted() != uint64(count) {
		t.Errorf("Emitted = %d, count = %d", a.Emitted(), count)
	}
	udpFrac := float64(udp) / float64(count)
	if math.Abs(udpFrac-0.25) > 0.03 {
		t.Errorf("UDP fraction = %v", udpFrac)
	}
}

func TestRandomScanDeterminism(t *testing.T) {
	a1, _ := NewRandomScan(validScan())
	a2, _ := NewRandomScan(validScan())
	for i := 0; i < 1000; i++ {
		p1, ok1 := a1.Next()
		p2, ok2 := a2.Next()
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestPortScanValidation(t *testing.T) {
	base := PortScanConfig{
		Scanner: packet.AddrFrom4(203, 0, 113, 9),
		Subnet:  subnets()[0],
		Ports:   []uint16{80, 445},
		Rate:    100,
	}
	bad := base
	bad.Rate = 0
	if _, err := NewPortScan(bad); !errors.Is(err, ErrConfig) {
		t.Error("zero rate accepted")
	}
	bad = base
	bad.Ports = nil
	if _, err := NewPortScan(bad); !errors.Is(err, ErrConfig) {
		t.Error("no ports accepted")
	}
	bad = base
	bad.Start = -time.Second
	if _, err := NewPortScan(bad); !errors.Is(err, ErrConfig) {
		t.Error("negative start accepted")
	}
}

func TestPortScanSweepsEveryHostPort(t *testing.T) {
	cfg := PortScanConfig{
		Scanner: packet.AddrFrom4(203, 0, 113, 9),
		Subnet:  packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 28), // 16 hosts
		Ports:   []uint16{80, 445},
		Rate:    1000,
	}
	s, err := NewPortScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[packet.Tuple]bool)
	count := 0
	var last time.Duration = -1
	for {
		pkt, ok := s.Next()
		if !ok {
			break
		}
		count++
		if pkt.Time <= last {
			t.Fatal("non-increasing times")
		}
		last = pkt.Time
		key := pkt.Tuple
		key.SrcPort = 0 // randomized
		seen[key] = true
		if pkt.Flags != packet.SYN {
			t.Fatalf("flags = %v", pkt.Flags)
		}
	}
	if count != 16*2 {
		t.Errorf("emitted %d probes, want 32", count)
	}
	if len(seen) != 32 {
		t.Errorf("distinct (host,port) pairs = %d, want 32", len(seen))
	}
}

func TestPortScanFINMode(t *testing.T) {
	cfg := PortScanConfig{
		Scanner: packet.AddrFrom4(203, 0, 113, 9),
		Subnet:  packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 30),
		Ports:   []uint16{22},
		Rate:    10,
		FIN:     true,
	}
	s, err := NewPortScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkt, ok := s.Next()
	if !ok || pkt.Flags != packet.FIN {
		t.Errorf("FIN scan flags = %v", pkt.Flags)
	}
}

func TestInsiderFloodValidation(t *testing.T) {
	base := InsiderFloodConfig{
		Host:     packet.AddrFrom4(10, 10, 0, 5),
		Rate:     100,
		Duration: time.Second,
	}
	for _, mut := range []func(*InsiderFloodConfig){
		func(c *InsiderFloodConfig) { c.Rate = 0 },
		func(c *InsiderFloodConfig) { c.Duration = 0 },
		func(c *InsiderFloodConfig) { c.Start = -1 },
	} {
		cfg := base
		mut(&cfg)
		if _, err := NewInsiderFlood(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestInsiderFloodEmitsOutgoing(t *testing.T) {
	host := packet.AddrFrom4(10, 10, 0, 5)
	f, err := NewInsiderFlood(InsiderFloodConfig{
		Seed: 3, Host: host, Rate: 1000, Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		pkt, ok := f.Next()
		if !ok {
			break
		}
		count++
		if pkt.Dir != packet.Outgoing {
			t.Fatal("flood packet not outgoing")
		}
		if pkt.Tuple.Src != host {
			t.Fatalf("source = %v", pkt.Tuple.Src)
		}
	}
	if count < 4000 || count > 6000 {
		t.Errorf("emitted %d, want ~5000", count)
	}
	if f.Emitted() != uint64(count) {
		t.Errorf("Emitted = %d", f.Emitted())
	}
}

func TestMergeOrdersStreams(t *testing.T) {
	scanA, _ := NewRandomScan(RandomScanConfig{
		Seed: 1, Rate: 500, Start: 0, Duration: 4 * time.Second, Subnets: subnets(),
	})
	scanB, _ := NewRandomScan(RandomScanConfig{
		Seed: 2, Rate: 300, Start: 2 * time.Second, Duration: 4 * time.Second, Subnets: subnets(),
	})
	merged := Merge(scanA, scanB)
	var last time.Duration = -1
	count := 0
	for {
		pkt, ok := merged.Next()
		if !ok {
			break
		}
		if pkt.Time < last {
			t.Fatalf("merge out of order at packet %d", count)
		}
		last = pkt.Time
		count++
	}
	// ~500*4 + 300*4 = 3200.
	if count < 2500 || count > 4000 {
		t.Errorf("merged %d packets", count)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	m := Merge()
	if _, ok := m.Next(); ok {
		t.Error("empty merge produced a packet")
	}
	scan, _ := NewRandomScan(RandomScanConfig{
		Seed: 1, Rate: 100, Duration: time.Second, Subnets: subnets(),
	})
	m = Merge(scan)
	n := 0
	for {
		if _, ok := m.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Error("single-stream merge empty")
	}
}
