package attack

import (
	"fmt"
	"math"
	"sort"
	"time"

	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// WormConfig parameterizes a random-scanning SI worm epidemic in the style
// of the Code Red models the paper cites [6, 13, 21]: every infected host
// probes uniformly random addresses at a fixed rate; probes that reach a
// vulnerable host infect it.
//
// The external Internet population is modeled by the standard epidemic
// differential equation di/dt = s·i·(V−i)/Ω (s scan rate, V vulnerable
// population, Ω scanned address space) integrated in discrete steps, while
// the protected client networks are modeled host-by-host: probes that land
// in the subnets are emitted as packets so a filter can drop or deliver
// them, and inside hosts that become infected start scanning outward
// themselves (becoming §5.2 insiders).
type WormConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// ScanRate is probes per second per infected host.
	ScanRate float64
	// ExternalVulnerable is the vulnerable population outside the
	// protected networks.
	ExternalVulnerable int
	// ExternalInfected0 is the initially infected external population.
	ExternalInfected0 int
	// VulnerablePort is the service the worm exploits.
	VulnerablePort uint16
	// Subnets are the protected client networks.
	Subnets []packet.Prefix
	// InsideVulnerable are the vulnerable hosts inside the subnets.
	InsideVulnerable []packet.Addr
	// Start and Duration bound the simulated epidemic on the trace
	// clock.
	Start, Duration time.Duration
	// AddressSpace is the size Ω of the scanned space. The real
	// Internet is 2^32; experiments shrink it so the epidemic completes
	// in simulated minutes.
	AddressSpace float64
	// Step is the epidemic integration step.
	Step time.Duration
}

// Validate reports whether the configuration is usable.
func (c WormConfig) Validate() error {
	if c.ScanRate <= 0 {
		return fmt.Errorf("%w: scan rate %v", ErrConfig, c.ScanRate)
	}
	if c.ExternalVulnerable < 1 || c.ExternalInfected0 < 1 {
		return fmt.Errorf("%w: external population %d/%d", ErrConfig,
			c.ExternalVulnerable, c.ExternalInfected0)
	}
	if c.ExternalInfected0 > c.ExternalVulnerable {
		return fmt.Errorf("%w: infected0 exceeds vulnerable", ErrConfig)
	}
	if len(c.Subnets) == 0 {
		return fmt.Errorf("%w: no subnets", ErrConfig)
	}
	if c.Duration <= 0 || c.Start < 0 {
		return fmt.Errorf("%w: window %v+%v", ErrConfig, c.Start, c.Duration)
	}
	if c.AddressSpace <= 0 {
		return fmt.Errorf("%w: address space %v", ErrConfig, c.AddressSpace)
	}
	if c.Step <= 0 {
		return fmt.Errorf("%w: step %v", ErrConfig, c.Step)
	}
	return nil
}

// Worm is the epidemic packet stream. Feed packets that actually reach
// their destination back through Deliver so inside infections occur.
type Worm struct {
	cfg        WormConfig
	rng        *xrand.Rand
	subnetSize float64

	externalInfected float64
	insideInfected   map[packet.Addr]bool
	insideList       []packet.Addr // infection order, for deterministic iteration
	vulnerable       map[packet.Addr]bool

	stepStart time.Duration
	buf       []packet.Packet
	bufIdx    int
	done      bool
}

var _ Stream = (*Worm)(nil)

// NewWorm validates cfg and returns the epidemic stream.
func NewWorm(cfg WormConfig) (*Worm, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Worm{
		cfg:              cfg,
		rng:              xrand.New(cfg.Seed),
		externalInfected: float64(cfg.ExternalInfected0),
		insideInfected:   make(map[packet.Addr]bool),
		vulnerable:       make(map[packet.Addr]bool, len(cfg.InsideVulnerable)),
		stepStart:        cfg.Start,
	}
	for _, s := range cfg.Subnets {
		w.subnetSize += float64(s.Size())
	}
	for _, a := range cfg.InsideVulnerable {
		w.vulnerable[a] = true
	}
	return w, nil
}

// ExternalInfected returns the current external infected population.
func (w *Worm) ExternalInfected() float64 { return w.externalInfected }

// InsideInfected returns the number of infected inside hosts.
func (w *Worm) InsideInfected() int { return len(w.insideList) }

// Deliver notifies the worm that pkt reached its destination (i.e. the
// filter, if any, admitted it). It returns true when the delivery infects
// a previously healthy inside host.
func (w *Worm) Deliver(pkt packet.Packet) bool {
	if pkt.Dir != packet.Incoming || pkt.Tuple.DstPort != w.cfg.VulnerablePort {
		return false
	}
	dst := pkt.Tuple.Dst
	if !w.vulnerable[dst] || w.insideInfected[dst] {
		return false
	}
	w.insideInfected[dst] = true
	w.insideList = append(w.insideList, dst)
	return true
}

// Next implements Stream: it emits, in time order, every worm probe that
// crosses the edge router — inbound probes aimed at the subnets and
// outbound probes from infected inside hosts.
func (w *Worm) Next() (packet.Packet, bool) {
	for w.bufIdx >= len(w.buf) {
		if w.done {
			return packet.Packet{}, false
		}
		w.fillStep()
	}
	pkt := w.buf[w.bufIdx]
	w.bufIdx++
	return pkt, true
}

// fillStep integrates one epidemic step and materializes its packets.
func (w *Worm) fillStep() {
	w.buf = w.buf[:0]
	w.bufIdx = 0
	if w.stepStart >= w.cfg.Start+w.cfg.Duration {
		w.done = true
		return
	}
	dt := w.cfg.Step
	dtSec := dt.Seconds()

	totalInfected := w.externalInfected + float64(len(w.insideInfected))

	// Inbound probes: every infected host sprays the whole space; the
	// fraction hitting our subnets is subnetSize/Ω.
	meanInbound := totalInfected * w.cfg.ScanRate * dtSec * w.subnetSize / w.cfg.AddressSpace
	for i := 0; i < w.poisson(meanInbound); i++ {
		subnet := w.cfg.Subnets[w.rng.Intn(len(w.cfg.Subnets))]
		w.buf = append(w.buf, packet.Packet{
			Time: w.stepStart + time.Duration(w.rng.Float64()*float64(dt)),
			Tuple: packet.Tuple{
				Src:     packet.Addr(w.rng.Uint32() | 1),
				Dst:     subnet.Nth(uint64(w.rng.Intn(int(subnet.Size())))),
				SrcPort: uint16(1024 + w.rng.Intn(60000)),
				DstPort: w.cfg.VulnerablePort,
				Proto:   packet.TCP,
			},
			Dir:    packet.Incoming,
			Flags:  packet.SYN,
			Length: 62,
		})
	}

	// Outbound probes from infected insiders (visible at the edge; they
	// also pollute the bitmap exactly as §5.2 describes).
	for _, host := range w.insideList {
		n := w.poisson(w.cfg.ScanRate * dtSec)
		for i := 0; i < n; i++ {
			w.buf = append(w.buf, packet.Packet{
				Time: w.stepStart + time.Duration(w.rng.Float64()*float64(dt)),
				Tuple: packet.Tuple{
					Src:     host,
					Dst:     packet.Addr(w.rng.Uint32() | 1),
					SrcPort: uint16(1024 + w.rng.Intn(60000)),
					DstPort: w.cfg.VulnerablePort,
					Proto:   packet.TCP,
				},
				Dir:    packet.Outgoing,
				Flags:  packet.SYN,
				Length: 62,
			})
		}
	}

	sort.SliceStable(w.buf, func(i, j int) bool { return w.buf[i].Time < w.buf[j].Time })

	// External epidemic update (logistic SI step). Inside infections
	// only happen through Deliver.
	v := float64(w.cfg.ExternalVulnerable)
	di := totalInfected * w.cfg.ScanRate * dtSec * (v - w.externalInfected) / w.cfg.AddressSpace
	w.externalInfected += di
	if w.externalInfected > v {
		w.externalInfected = v
	}

	w.stepStart += dt
}

// poisson draws a Poisson variate with the given mean (Knuth's method for
// small means, normal approximation above 64).
func (w *Worm) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(mean + w.rng.Normal()*math.Sqrt(mean) + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= w.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
