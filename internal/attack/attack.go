// Package attack implements the adversarial traffic generators of the
// paper's evaluation and discussion sections:
//
//   - RandomScan (§4.3, Figure 5): incoming packets with random source
//     address, source port and destination port, destination confined to
//     the protected subnets, at a configurable rate (the paper uses
//     500 K pps, "about 20 times faster than the normal traffic").
//   - PortScan (§5.3): SYN- or FIN-scans sweeping hosts and ports of a
//     subnet, used to validate the APD marking policy.
//   - InsiderFlood (§5.2): an infected inside host emitting random
//     *outgoing* tuples that pollute the bitmap.
//   - Worm (worm.go): a random-scanning SI epidemic in the style of the
//     Code Red models the paper cites [6, 13, 21].
//
// All generators implement Stream and can be interleaved with the normal
// workload via Merge.
package attack

import (
	"errors"
	"fmt"
	"time"

	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// ErrConfig is returned by generator constructors for invalid parameters.
var ErrConfig = errors.New("attack: invalid configuration")

// Stream is a time-ordered packet source. trafficgen.Generator satisfies
// it structurally.
type Stream interface {
	// Next returns the next packet; ok is false once the stream ends.
	Next() (pkt packet.Packet, ok bool)
}

// RandomScanConfig parameterizes a random scanning flood.
type RandomScanConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Rate is the attack packet rate per second.
	Rate float64
	// Start is when the attack begins on the trace clock.
	Start time.Duration
	// Duration is how long the attack lasts.
	Duration time.Duration
	// Subnets confines destination addresses ("daddr is confined to the
	// address space of the given sub-networks").
	Subnets []packet.Prefix
	// UDPFraction is the share of scan packets sent over UDP; the rest
	// are TCP SYNs.
	UDPFraction float64
}

// Validate reports whether the configuration is usable.
func (c RandomScanConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("%w: rate %v", ErrConfig, c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("%w: duration %v", ErrConfig, c.Duration)
	}
	if c.Start < 0 {
		return fmt.Errorf("%w: start %v", ErrConfig, c.Start)
	}
	if len(c.Subnets) == 0 {
		return fmt.Errorf("%w: no target subnets", ErrConfig)
	}
	if c.UDPFraction < 0 || c.UDPFraction > 1 {
		return fmt.Errorf("%w: UDP fraction %v", ErrConfig, c.UDPFraction)
	}
	return nil
}

// RandomScan emits the Figure 5 attack traffic.
type RandomScan struct {
	cfg     RandomScanConfig
	rng     *xrand.Rand
	now     time.Duration
	end     time.Duration
	emitted uint64
}

var _ Stream = (*RandomScan)(nil)

// NewRandomScan validates cfg and returns the stream.
func NewRandomScan(cfg RandomScanConfig) (*RandomScan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RandomScan{
		cfg: cfg,
		rng: xrand.New(cfg.Seed),
		now: cfg.Start,
		end: cfg.Start + cfg.Duration,
	}, nil
}

// Emitted returns the number of attack packets produced so far.
func (a *RandomScan) Emitted() uint64 { return a.emitted }

// Next implements Stream: exponential interarrivals at the configured
// rate, random source tuple, destination inside the subnets.
func (a *RandomScan) Next() (packet.Packet, bool) {
	a.now += time.Duration(a.rng.Exp(float64(time.Second) / a.cfg.Rate))
	if a.now >= a.end {
		return packet.Packet{}, false
	}
	subnet := a.cfg.Subnets[a.rng.Intn(len(a.cfg.Subnets))]
	proto := packet.TCP
	flags := packet.SYN
	length := 60
	if a.rng.Bool(a.cfg.UDPFraction) {
		proto = packet.UDP
		flags = 0
		length = 64
	}
	pkt := packet.Packet{
		Time: a.now,
		Tuple: packet.Tuple{
			Src:     packet.Addr(a.rng.Uint32() | 1),
			Dst:     subnet.Nth(uint64(a.rng.Intn(int(subnet.Size())))),
			SrcPort: uint16(1 + a.rng.Intn(65535)),
			DstPort: uint16(1 + a.rng.Intn(65535)),
			Proto:   proto,
		},
		Dir:    packet.Incoming,
		Flags:  flags,
		Length: length,
	}
	a.emitted++
	return pkt, true
}

// PortScanConfig parameterizes a sequential SYN/FIN sweep.
type PortScanConfig struct {
	// Seed drives source-port randomization.
	Seed uint64
	// Scanner is the external source address.
	Scanner packet.Addr
	// Subnet is the swept client network.
	Subnet packet.Prefix
	// Ports are the destination ports probed on every host.
	Ports []uint16
	// Rate is probes per second.
	Rate float64
	// Start is when the sweep begins.
	Start time.Duration
	// FIN selects a FIN-scan instead of a SYN-scan.
	FIN bool
}

// Validate reports whether the configuration is usable.
func (c PortScanConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("%w: rate %v", ErrConfig, c.Rate)
	}
	if len(c.Ports) == 0 {
		return fmt.Errorf("%w: no ports", ErrConfig)
	}
	if c.Start < 0 {
		return fmt.Errorf("%w: start %v", ErrConfig, c.Start)
	}
	return nil
}

// PortScan sweeps every (host, port) pair of the subnet once, in order.
type PortScan struct {
	cfg  PortScanConfig
	rng  *xrand.Rand
	now  time.Duration
	host uint64
	port int
}

var _ Stream = (*PortScan)(nil)

// NewPortScan validates cfg and returns the stream.
func NewPortScan(cfg PortScanConfig) (*PortScan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PortScan{cfg: cfg, rng: xrand.New(cfg.Seed), now: cfg.Start}, nil
}

// Next implements Stream.
func (s *PortScan) Next() (packet.Packet, bool) {
	if s.host >= s.cfg.Subnet.Size() {
		return packet.Packet{}, false
	}
	flags := packet.SYN
	if s.cfg.FIN {
		flags = packet.FIN
	}
	pkt := packet.Packet{
		Time: s.now,
		Tuple: packet.Tuple{
			Src:     s.cfg.Scanner,
			Dst:     s.cfg.Subnet.Nth(s.host),
			SrcPort: uint16(1024 + s.rng.Intn(60000)),
			DstPort: s.cfg.Ports[s.port],
			Proto:   packet.TCP,
		},
		Dir:    packet.Incoming,
		Flags:  flags,
		Length: 60,
	}
	s.advance()
	return pkt, true
}

func (s *PortScan) advance() {
	s.now += time.Duration(float64(time.Second) / s.cfg.Rate)
	s.port++
	if s.port >= len(s.cfg.Ports) {
		s.port = 0
		s.host++
	}
}

// InsiderFloodConfig parameterizes the §5.2 insider attack: an infected
// client emitting random outgoing tuples.
type InsiderFloodConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Host is the infected inside address.
	Host packet.Addr
	// Rate is outgoing packets per second.
	Rate float64
	// Start is when the flood begins.
	Start time.Duration
	// Duration is how long it lasts.
	Duration time.Duration
}

// Validate reports whether the configuration is usable.
func (c InsiderFloodConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("%w: rate %v", ErrConfig, c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("%w: duration %v", ErrConfig, c.Duration)
	}
	if c.Start < 0 {
		return fmt.Errorf("%w: start %v", ErrConfig, c.Start)
	}
	return nil
}

// InsiderFlood emits random outgoing tuples that pollute the bitmap
// (raising its utilization by ≈ m·r·T_e/2^n, §5.2).
type InsiderFlood struct {
	cfg     InsiderFloodConfig
	rng     *xrand.Rand
	now     time.Duration
	end     time.Duration
	emitted uint64
}

var _ Stream = (*InsiderFlood)(nil)

// NewInsiderFlood validates cfg and returns the stream.
func NewInsiderFlood(cfg InsiderFloodConfig) (*InsiderFlood, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &InsiderFlood{
		cfg: cfg,
		rng: xrand.New(cfg.Seed),
		now: cfg.Start,
		end: cfg.Start + cfg.Duration,
	}, nil
}

// Emitted returns the number of flood packets produced so far.
func (f *InsiderFlood) Emitted() uint64 { return f.emitted }

// Next implements Stream.
func (f *InsiderFlood) Next() (packet.Packet, bool) {
	f.now += time.Duration(f.rng.Exp(float64(time.Second) / f.cfg.Rate))
	if f.now >= f.end {
		return packet.Packet{}, false
	}
	pkt := packet.Packet{
		Time: f.now,
		Tuple: packet.Tuple{
			Src:     f.cfg.Host,
			Dst:     packet.Addr(f.rng.Uint32() | 1),
			SrcPort: uint16(1024 + f.rng.Intn(60000)),
			DstPort: uint16(1 + f.rng.Intn(65535)),
			Proto:   packet.TCP,
		},
		Dir:    packet.Outgoing,
		Flags:  packet.SYN,
		Length: 60,
	}
	f.emitted++
	return pkt, true
}

// Merge interleaves streams into one time-ordered stream. Input streams
// must each be time-ordered; ties break toward earlier argument position.
func Merge(streams ...Stream) Stream {
	m := &merger{}
	for _, s := range streams {
		if pkt, ok := s.Next(); ok {
			m.heads = append(m.heads, head{pkt: pkt, src: s})
		}
	}
	return m
}

type head struct {
	pkt packet.Packet
	src Stream
}

type merger struct {
	heads []head
}

var _ Stream = (*merger)(nil)

// Next implements Stream: a k-way merge over the head elements. The number
// of merged streams is small (2–3), so a linear scan beats heap overhead.
func (m *merger) Next() (packet.Packet, bool) {
	if len(m.heads) == 0 {
		return packet.Packet{}, false
	}
	best := 0
	for i := 1; i < len(m.heads); i++ {
		if m.heads[i].pkt.Time < m.heads[best].pkt.Time {
			best = i
		}
	}
	out := m.heads[best].pkt
	if next, ok := m.heads[best].src.Next(); ok {
		m.heads[best].pkt = next
	} else {
		m.heads = append(m.heads[:best], m.heads[best+1:]...)
	}
	return out, true
}
