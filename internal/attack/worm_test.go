package attack

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/model"
	"bitmapfilter/internal/packet"
)

func validWorm() WormConfig {
	sn := subnets()
	return WormConfig{
		Seed:               1,
		ScanRate:           50,
		ExternalVulnerable: 5000,
		ExternalInfected0:  10,
		VulnerablePort:     445,
		Subnets:            sn,
		InsideVulnerable: []packet.Addr{
			sn[0].Nth(10), sn[0].Nth(20), sn[1].Nth(30),
		},
		Duration:     5 * time.Minute,
		AddressSpace: 1 << 24,
		Step:         time.Second,
	}
}

func TestWormValidation(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*WormConfig)
	}{
		{name: "zero scan rate", mut: func(c *WormConfig) { c.ScanRate = 0 }},
		{name: "no vulnerable", mut: func(c *WormConfig) { c.ExternalVulnerable = 0 }},
		{name: "no infected0", mut: func(c *WormConfig) { c.ExternalInfected0 = 0 }},
		{name: "infected0 > vulnerable", mut: func(c *WormConfig) { c.ExternalInfected0 = 9999999 }},
		{name: "no subnets", mut: func(c *WormConfig) { c.Subnets = nil }},
		{name: "zero duration", mut: func(c *WormConfig) { c.Duration = 0 }},
		{name: "zero space", mut: func(c *WormConfig) { c.AddressSpace = 0 }},
		{name: "zero step", mut: func(c *WormConfig) { c.Step = 0 }},
	}
	for _, tt := range muts {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validWorm()
			tt.mut(&cfg)
			if _, err := NewWorm(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("error = %v, want ErrConfig", err)
			}
		})
	}
}

func TestWormEpidemicGrowsLogistically(t *testing.T) {
	w, err := NewWorm(validWorm())
	if err != nil {
		t.Fatal(err)
	}
	initial := w.ExternalInfected()
	// Drain the stream to drive the epidemic.
	count := 0
	var last time.Duration = -1
	for {
		pkt, ok := w.Next()
		if !ok {
			break
		}
		if pkt.Time < last {
			t.Fatal("worm stream out of order")
		}
		last = pkt.Time
		count++
	}
	final := w.ExternalInfected()
	if final <= initial*2 {
		t.Errorf("epidemic did not grow: %v -> %v", initial, final)
	}
	if final > float64(validWorm().ExternalVulnerable) {
		t.Errorf("infected %v exceeds vulnerable population", final)
	}
	if count == 0 {
		t.Error("no scan packets emitted")
	}
}

func TestWormInboundProbesTargetSubnets(t *testing.T) {
	cfg := validWorm()
	w, err := NewWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		pkt, ok := w.Next()
		if !ok {
			break
		}
		if pkt.Dir != packet.Incoming {
			continue
		}
		if pkt.Tuple.DstPort != cfg.VulnerablePort {
			t.Fatalf("probe to port %d", pkt.Tuple.DstPort)
		}
		in := false
		for _, s := range cfg.Subnets {
			if s.Contains(pkt.Tuple.Dst) {
				in = true
			}
		}
		if !in {
			t.Fatalf("probe to %v outside subnets", pkt.Tuple.Dst)
		}
	}
}

func TestWormDeliverInfectsVulnerableHost(t *testing.T) {
	cfg := validWorm()
	w, err := NewWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := cfg.InsideVulnerable[0]
	probe := packet.Packet{
		Tuple: packet.Tuple{
			Src: packet.AddrFrom4(203, 0, 113, 1), Dst: victim,
			SrcPort: 4444, DstPort: cfg.VulnerablePort, Proto: packet.TCP,
		},
		Dir: packet.Incoming,
	}
	if !w.Deliver(probe) {
		t.Fatal("vulnerable host not infected")
	}
	if w.InsideInfected() != 1 {
		t.Errorf("InsideInfected = %d", w.InsideInfected())
	}
	// Idempotent: same host cannot be infected twice.
	if w.Deliver(probe) {
		t.Error("host infected twice")
	}

	// Wrong port: no infection.
	wrongPort := probe
	wrongPort.Tuple.DstPort = 80
	wrongPort.Tuple.Dst = cfg.InsideVulnerable[1]
	if w.Deliver(wrongPort) {
		t.Error("infection on wrong port")
	}

	// Non-vulnerable host: no infection.
	healthy := probe
	healthy.Tuple.Dst = cfg.Subnets[0].Nth(99)
	if w.Deliver(healthy) {
		t.Error("non-vulnerable host infected")
	}

	// Outgoing packets never infect.
	outP := probe
	outP.Dir = packet.Outgoing
	outP.Tuple.Dst = cfg.InsideVulnerable[2]
	if w.Deliver(outP) {
		t.Error("outgoing packet caused infection")
	}
}

func TestInfectedInsiderScansOutward(t *testing.T) {
	cfg := validWorm()
	cfg.ScanRate = 200
	w, err := NewWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := cfg.InsideVulnerable[0]
	w.Deliver(packet.Packet{
		Tuple: packet.Tuple{
			Src: packet.AddrFrom4(203, 0, 113, 1), Dst: victim,
			SrcPort: 4444, DstPort: cfg.VulnerablePort, Proto: packet.TCP,
		},
		Dir: packet.Incoming,
	})
	outbound := 0
	for i := 0; i < 5000; i++ {
		pkt, ok := w.Next()
		if !ok {
			break
		}
		if pkt.Dir == packet.Outgoing {
			if pkt.Tuple.Src != victim {
				t.Fatalf("outbound scan from %v, want %v", pkt.Tuple.Src, victim)
			}
			outbound++
		}
	}
	if outbound == 0 {
		t.Error("infected insider emitted no outbound scans")
	}
}

func TestWormDeterminism(t *testing.T) {
	w1, _ := NewWorm(validWorm())
	w2, _ := NewWorm(validWorm())
	for i := 0; i < 3000; i++ {
		p1, ok1 := w1.Next()
		p2, ok2 := w2.Next()
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("worm streams diverge at %d", i)
		}
		if !ok1 {
			break
		}
	}
}

// The discrete epidemic integration must track the closed-form logistic
// solution.
func TestWormTracksLogisticModel(t *testing.T) {
	cfg := validWorm()
	cfg.Duration = 10 * time.Minute
	w, err := NewWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := w.Next(); !ok {
			break
		}
	}
	want := model.LogisticInfected(cfg.Duration, cfg.ScanRate,
		float64(cfg.ExternalVulnerable), float64(cfg.ExternalInfected0), cfg.AddressSpace)
	got := w.ExternalInfected()
	if rel := (got - want) / want; rel < -0.15 || rel > 0.15 {
		t.Errorf("external infected %v vs logistic model %v (rel %.3f)", got, want, rel)
	}
}

func TestWormStreamEnds(t *testing.T) {
	cfg := validWorm()
	cfg.Duration = 10 * time.Second
	w, err := NewWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := w.Next(); !ok {
			break
		}
	}
	if _, ok := w.Next(); ok {
		t.Error("stream restarted after end")
	}
}
