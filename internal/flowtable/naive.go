package flowtable

import (
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// Naive is the exact filter the bitmap approximates — §3.3's "naïve
// solution": associate a timer of initial value T with the (partial)
// address tuple of each outgoing packet, reset it on every outgoing
// packet, delete the tuple on expiry, and admit an incoming packet iff its
// inverse tuple is currently recorded.
//
// Because it keys on the same partial tuple as the bitmap (remote port
// excluded), Naive is the bitmap filter's ground truth: with
// T = (k−1)·Δt, everything Naive admits the bitmap is guaranteed to admit
// (no false positives relative to the exact filter), and everything extra
// the bitmap admits is either a hash collision or a mark still inside the
// [(k−1)·Δt, k·Δt) rotation-phase window. The paper rejects deploying it
// directly — "the complexity of storage and computation make it
// infeasible to deploy in an ISP network" — which is exactly what makes it
// the right oracle for tests.
type Naive struct {
	expiry   time.Duration
	tuples   map[packet.Key]time.Duration
	now      time.Duration
	nextGC   time.Duration
	counters filtering.Counters
}

var _ filtering.PacketFilter = (*Naive)(nil)

// NewNaive returns the exact filter with the given timer T. Non-positive
// expiry falls back to the paper's 20 s.
func NewNaive(expiry time.Duration) *Naive {
	if expiry <= 0 {
		expiry = 20 * time.Second
	}
	return &Naive{
		expiry: expiry,
		tuples: make(map[packet.Key]time.Duration, 1<<12),
		nextGC: expiry,
	}
}

// Name implements filtering.PacketFilter.
func (n *Naive) Name() string { return "naive-exact" }

// Len returns the number of live tuples.
func (n *Naive) Len() int { return len(n.tuples) }

// MemoryBytes accounts the per-tuple state at the Table 1 convention of 30
// bytes per entry — the O(flows) footprint the bitmap avoids.
func (n *Naive) MemoryBytes() uint64 {
	return uint64(len(n.tuples)) * FlowStateBytes
}

// Counters implements filtering.PacketFilter.
func (n *Naive) Counters() filtering.Counters { return n.counters }

// AdvanceTo implements filtering.PacketFilter.
func (n *Naive) AdvanceTo(now time.Duration) {
	if now > n.now {
		n.now = now
	}
	if n.now < n.nextGC {
		return
	}
	cutoff := n.now - n.expiry
	for k, t0 := range n.tuples {
		if t0 < cutoff {
			delete(n.tuples, k)
		}
	}
	n.nextGC = n.now + n.expiry
}

// Process implements filtering.PacketFilter with the §3.3 semantics.
func (n *Naive) Process(pkt packet.Packet) filtering.Verdict {
	n.AdvanceTo(pkt.Time)
	if pkt.Dir == packet.Outgoing {
		n.tuples[pkt.Tuple.OutgoingKey()] = pkt.Time
		n.counters.Count(pkt, filtering.Pass)
		return filtering.Pass
	}
	v := filtering.Drop
	if t0, ok := n.tuples[pkt.Tuple.IncomingKey()]; ok && pkt.Time-t0 <= n.expiry {
		v = filtering.Pass
	}
	n.counters.Count(pkt, v)
	return v
}

// WouldAdmit reports, without counting, whether an incoming packet with
// the given tuple would pass right now.
func (n *Naive) WouldAdmit(tup packet.Tuple) bool {
	t0, ok := n.tuples[tup.IncomingKey()]
	return ok && n.now-t0 <= n.expiry
}
