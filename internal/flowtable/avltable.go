package flowtable

import (
	"time"

	"bitmapfilter/internal/avl"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// AVLTable is the balanced-tree SPI table of Table 1: O(log n) insert and
// lookup, O(n) garbage collection by full traversal. Flow keys are compared
// as byte strings.
type AVLTable struct {
	opts     options
	tree     avl.Tree[string, flowEntry]
	clk      clock
	counters filtering.Counters
}

var _ filtering.PacketFilter = (*AVLTable)(nil)

// NewAVLTable returns an empty AVL-tree flow table.
func NewAVLTable(opts ...Option) *AVLTable {
	return &AVLTable{opts: buildOptions(opts)}
}

// Name implements filtering.PacketFilter.
func (a *AVLTable) Name() string { return "spi-avl" }

// Len returns the number of live flow entries.
func (a *AVLTable) Len() int { return a.tree.Len() }

// MemoryBytes reports the nominal footprint at 30 bytes per flow state
// (Table 1 accounting; the tree nodes hold key, timestamp and two child
// pointers).
func (a *AVLTable) MemoryBytes() uint64 {
	return uint64(a.tree.Len()) * FlowStateBytes
}

// Counters implements filtering.PacketFilter.
func (a *AVLTable) Counters() filtering.Counters { return a.counters }

// AdvanceTo implements filtering.PacketFilter.
func (a *AVLTable) AdvanceTo(now time.Duration) {
	if a.clk.due(now, a.opts.gcInterval) {
		cutoff := a.clk.now - a.opts.idleTimeout
		a.tree.DeleteWhere(func(_ string, e flowEntry) bool {
			return e.lastSeen < cutoff
		})
	}
}

// Process implements filtering.PacketFilter.
func (a *AVLTable) Process(pkt packet.Packet) filtering.Verdict {
	a.AdvanceTo(pkt.Time)
	key := canonicalKey(pkt)
	skey := string(key[:])

	e, found := a.tree.Get(skey)
	v, act, updated := decide(e, found, pkt, a.opts.idleTimeout)
	if act == actCreate || act == actUpdate {
		a.tree.Put(skey, updated)
	}
	a.counters.Count(pkt, v)
	return v
}
