package flowtable

import (
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// batchTrace builds a mixed outgoing/incoming trace over a small tuple
// space so lookups hit established flows.
func batchTrace(n int, seed uint64) []packet.Packet {
	r := xrand.New(seed)
	pkts := make([]packet.Packet, 0, n)
	now := time.Duration(0)
	for len(pkts) < n {
		now += time.Duration(r.Intn(int(200 * time.Millisecond)))
		sp := uint16(4000 + r.Intn(24))
		if r.Bool(0.5) {
			pkts = append(pkts, outPkt(now, client, server, sp, 80))
		} else {
			pkts = append(pkts, inPkt(now, server, client, 80, sp))
		}
	}
	return pkts
}

// TestBatchFallbackMatchesProcess checks that the generic fallback adapter
// behind every SPI table's ProcessBatch/ProcessBatchInto yields verdicts
// identical to per-packet Process on a twin instance, and that the
// caller-buffer contract (reuse when cap suffices, full overwrite) holds.
func TestBatchFallbackMatchesProcess(t *testing.T) {
	pkts := batchTrace(1500, 11)

	type batchTable interface {
		filtering.BatchFilter
	}
	cases := append(factories(), tableFactory{
		name: "naive",
		make: func(opts ...Option) filtering.PacketFilter { return NewNaive(30 * time.Second) },
	})
	for _, tf := range cases {
		t.Run(tf.name, func(t *testing.T) {
			bat, ok := tf.make().(batchTable)
			if !ok {
				t.Fatalf("%s does not implement filtering.BatchFilter", tf.name)
			}
			seq := tf.make()

			out := make([]filtering.Verdict, 8, 8)
			for i := range out {
				out[i] = filtering.Verdict(200) // poison
			}
			const chunk = 97 // unaligned on purpose
			for off := 0; off < len(pkts); off += chunk {
				end := min(off+chunk, len(pkts))
				prev := out
				out = bat.ProcessBatchInto(pkts[off:end], out)
				if cap(prev) >= end-off && &out[0] != &prev[0] {
					t.Fatal("buffer with sufficient cap not reused")
				}
				for i := off; i < end; i++ {
					if want := seq.Process(pkts[i]); out[i-off] != want {
						t.Fatalf("verdict[%d] = %v, want %v", i, out[i-off], want)
					}
				}
			}

			// ProcessBatch on a fresh pair agrees too and handles empty.
			bat2, seq2 := tf.make().(batchTable), tf.make()
			got := bat2.ProcessBatch(pkts[:64])
			for i := range got {
				if want := seq2.Process(pkts[i]); got[i] != want {
					t.Fatalf("ProcessBatch verdict[%d] = %v, want %v", i, got[i], want)
				}
			}
			if v := bat2.ProcessBatch(nil); v != nil {
				t.Errorf("ProcessBatch(nil) = %v", v)
			}
		})
	}
}
