package flowtable

import (
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// The SPI baselines have no batch-shaped inner loop to exploit — every
// packet walks its own bucket, tree path or map probe — so they satisfy
// filtering.BatchFilter through the generic per-packet fallback. That keeps
// them drivable by the batch-first harnesses (replay, experiments, bench)
// with verdicts identical to per-packet processing.

var (
	_ filtering.BatchFilter = (*HashList)(nil)
	_ filtering.BatchFilter = (*AVLTable)(nil)
	_ filtering.BatchFilter = (*MapTable)(nil)
	_ filtering.BatchFilter = (*Naive)(nil)
)

// ProcessBatch implements filtering.BatchFilter via the per-packet fallback.
func (h *HashList) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	return filtering.ProcessBatch(h, pkts)
}

// ProcessBatchInto implements filtering.BatchFilter via the per-packet
// fallback.
func (h *HashList) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	return filtering.ProcessBatchInto(h, pkts, out)
}

// ProcessBatch implements filtering.BatchFilter via the per-packet fallback.
func (a *AVLTable) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	return filtering.ProcessBatch(a, pkts)
}

// ProcessBatchInto implements filtering.BatchFilter via the per-packet
// fallback.
func (a *AVLTable) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	return filtering.ProcessBatchInto(a, pkts, out)
}

// ProcessBatch implements filtering.BatchFilter via the per-packet fallback.
func (m *MapTable) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	return filtering.ProcessBatch(m, pkts)
}

// ProcessBatchInto implements filtering.BatchFilter via the per-packet
// fallback.
func (m *MapTable) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	return filtering.ProcessBatchInto(m, pkts, out)
}

// ProcessBatch implements filtering.BatchFilter via the per-packet fallback.
func (n *Naive) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	return filtering.ProcessBatch(n, pkts)
}

// ProcessBatchInto implements filtering.BatchFilter via the per-packet
// fallback.
func (n *Naive) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	return filtering.ProcessBatchInto(n, pkts, out)
}
