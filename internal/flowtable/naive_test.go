package flowtable

import (
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/trafficgen"
)

func TestNaiveBasicSemantics(t *testing.T) {
	n := NewNaive(20 * time.Second)
	if n.Name() == "" {
		t.Error("empty name")
	}
	n.Process(outPkt(0, client, server, 4000, 80))
	if n.Len() != 1 {
		t.Fatalf("Len = %d", n.Len())
	}
	// Reply admitted, including from another remote port (partial key).
	if v := n.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped")
	}
	if v := n.Process(inPkt(time.Second, server, client, 9999, 4000)); v != filtering.Pass {
		t.Error("alternate-remote-port reply dropped")
	}
	// Unsolicited dropped.
	if v := n.Process(inPkt(time.Second, server, client, 80, 4001)); v != filtering.Drop {
		t.Error("unsolicited admitted")
	}
	// Exact expiry at T.
	if v := n.Process(inPkt(20*time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply at exactly T dropped")
	}
	if v := n.Process(inPkt(20*time.Second+time.Nanosecond, server, client, 80, 4000)); v != filtering.Drop {
		t.Error("reply after T admitted")
	}
	if n.Counters().InDropped != 2 {
		t.Errorf("counters = %+v", n.Counters())
	}
}

func TestNaiveDefaultExpiry(t *testing.T) {
	n := NewNaive(0)
	n.Process(outPkt(0, client, server, 1, 2))
	if v := n.Process(inPkt(19*time.Second, server, client, 2, 1)); v != filtering.Pass {
		t.Error("default 20s expiry not applied")
	}
}

func TestNaiveGC(t *testing.T) {
	n := NewNaive(10 * time.Second)
	for i := 0; i < 500; i++ {
		n.Process(outPkt(0, client, server, uint16(1000+i), 80))
	}
	before := n.MemoryBytes()
	n.AdvanceTo(25 * time.Second)
	if n.Len() != 0 {
		t.Errorf("Len after GC = %d", n.Len())
	}
	if n.MemoryBytes() >= before {
		t.Error("memory did not shrink")
	}
}

func TestNaiveWouldAdmit(t *testing.T) {
	n := NewNaive(20 * time.Second)
	n.Process(outPkt(0, client, server, 4000, 80))
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	if !n.WouldAdmit(tup) {
		t.Error("WouldAdmit false for fresh tuple")
	}
	n.AdvanceTo(21 * time.Second)
	if n.WouldAdmit(tup) {
		t.Error("WouldAdmit true past expiry")
	}
}

// The approximation theorem the bitmap's design rests on: on any stream,
// the {k×n} bitmap's admissions are sandwiched between the exact naive
// filter with T = (k−1)·Δt (everything it admits, the bitmap must admit)
// and the exact naive filter with T = k·Δt plus hash collisions
// (everything the bitmap admits beyond naive-k·Δt must be a collision).
func TestBitmapSandwichedByNaiveFilters(t *testing.T) {
	const (
		kVectors = 4
		dt       = 5 * time.Second
	)
	bitmap := core.MustNew(
		core.WithOrder(16), core.WithVectors(kVectors), core.WithHashes(3),
		core.WithRotateEvery(dt), core.WithSeed(1))
	lower := NewNaive((kVectors - 1) * dt) // 15 s
	upper := NewNaive(kVectors * dt)       // 20 s

	cfg := trafficgen.DefaultConfig()
	cfg.Duration = 3 * time.Minute
	cfg.ConnRate = 20
	gen, err := trafficgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var incoming, lowerViolations, upperExtras uint64
	gen.Drain(func(pkt packet.Packet) {
		vb := bitmap.Process(pkt)
		vl := lower.Process(pkt)
		vu := upper.Process(pkt)
		if pkt.Dir != packet.Incoming {
			return
		}
		incoming++
		if vl == filtering.Pass && vb == filtering.Drop {
			lowerViolations++
		}
		if vb == filtering.Pass && vu == filtering.Drop {
			upperExtras++
		}
	})
	if incoming < 10000 {
		t.Fatalf("only %d incoming packets", incoming)
	}
	// Lower bound is a hard guarantee of Algorithm 1/2.
	if lowerViolations != 0 {
		t.Errorf("%d admissions of naive-(k-1)Δt dropped by the bitmap", lowerViolations)
	}
	// Upper-bound extras are hash collisions only: at order 16 with this
	// load they must be a tiny fraction of incoming traffic.
	if frac := float64(upperExtras) / float64(incoming); frac > 0.002 {
		t.Errorf("bitmap admitted %v beyond naive-kΔt (collisions too frequent)", frac)
	}
}

// With the same T the naive filter and the bitmap agree except for
// rotation-phase effects: compare drop rates on the calibrated trace.
func TestNaiveDropRateBracketsBitmap(t *testing.T) {
	bitmap := core.MustNew(
		core.WithOrder(18), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second), core.WithSeed(1))
	lower := NewNaive(15 * time.Second)
	upper := NewNaive(20 * time.Second)

	cfg := trafficgen.DefaultConfig()
	cfg.Duration = 3 * time.Minute
	cfg.ConnRate = 20
	gen, err := trafficgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen.Drain(func(pkt packet.Packet) {
		bitmap.Process(pkt)
		lower.Process(pkt)
		upper.Process(pkt)
	})
	b := bitmap.Counters().DropRate()
	lo := upper.Counters().DropRate() // longer T → fewer drops → lower rate
	hi := lower.Counters().DropRate()
	if b < lo-1e-9 || b > hi+1e-9 {
		t.Errorf("bitmap drop rate %v outside naive bracket [%v, %v]", b, lo, hi)
	}
}
