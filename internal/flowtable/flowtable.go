// Package flowtable implements the stateful packet inspection (SPI)
// baselines the paper compares the bitmap filter against (§2, Table 1,
// Figure 4): per-flow state tables that record every outgoing connection and
// admit only incoming packets whose reverse flow is known.
//
// Three interchangeable implementations are provided:
//
//   - HashList: a fixed-bucket hash table of singly-linked lists, modeled on
//     the Linux netfilter conntrack design the paper cites ("basically
//     link-lists with an indexed hash table"). O(1) expected insert/lookup,
//     O(n) worst case, O(n) garbage collection.
//   - AVLTable: a balanced-tree flow table, the paper's O(log n) column of
//     Table 1.
//   - MapTable: a plain Go map, included as the idiomatic-runtime reference
//     point for benchmarks.
//
// All tables key flows on the *outgoing* full tuple: an outgoing packet
// inserts its own tuple, an incoming packet looks up its reverse tuple, and
// entries idle longer than the configured timeout are garbage-collected
// (the paper's Figure 4 uses 240 s, the Windows TIME_WAIT default).
package flowtable

import (
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// FlowStateBytes is the nominal per-flow state size used for the memory
// accounting of Table 1: "the size of a flow state is set at 30 bytes,
// including source address, source port, destination address, destination
// port, connection state, timestamp, and pointers to maintain the list or
// tree data structure."
const FlowStateBytes = 30

// DefaultIdleTimeout is the flow expiry used in the paper's Figure 4
// experiment: the 240-second default TIME_WAIT timeout of Microsoft
// Windows.
const DefaultIdleTimeout = 240 * time.Second

// DefaultGCInterval is how often garbage collection sweeps run on the
// virtual clock. More frequent sweeps tighten expiry precision at O(n) cost
// per sweep.
const DefaultGCInterval = 10 * time.Second

// Option configures a flow table.
type Option interface {
	apply(*options)
}

type options struct {
	idleTimeout time.Duration
	gcInterval  time.Duration
	buckets     int
}

func defaultOptions() options {
	return options{
		idleTimeout: DefaultIdleTimeout,
		gcInterval:  DefaultGCInterval,
		buckets:     1 << 15,
	}
}

type idleTimeoutOption time.Duration

func (o idleTimeoutOption) apply(opts *options) { opts.idleTimeout = time.Duration(o) }

// WithIdleTimeout sets how long a flow may stay idle before it is
// collected. Non-positive values are ignored.
func WithIdleTimeout(d time.Duration) Option {
	return idleTimeoutOption(d)
}

type gcIntervalOption time.Duration

func (o gcIntervalOption) apply(opts *options) { opts.gcInterval = time.Duration(o) }

// WithGCInterval sets the period of garbage-collection sweeps. Non-positive
// values are ignored.
func WithGCInterval(d time.Duration) Option {
	return gcIntervalOption(d)
}

type bucketsOption int

func (o bucketsOption) apply(opts *options) { opts.buckets = int(o) }

// WithBuckets sets the bucket count of the HashList table (rounded up to a
// power of two). Ignored by the other tables and for non-positive values.
func WithBuckets(n int) Option {
	return bucketsOption(n)
}

func buildOptions(opts []Option) options {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.idleTimeout <= 0 {
		o.idleTimeout = DefaultIdleTimeout
	}
	if o.gcInterval <= 0 {
		o.gcInterval = DefaultGCInterval
	}
	if o.buckets <= 0 {
		o.buckets = 1 << 15
	}
	// Round buckets up to a power of two so the index is a mask.
	b := 1
	for b < o.buckets {
		b <<= 1
	}
	o.buckets = b
	return o
}

// flowKey is the canonical key of a flow: the full outgoing tuple.
type flowKey [13]byte

// flowState tracks TCP teardown so the table can drop packets for closed
// connections. This is the precision edge the paper attributes to SPI in
// Figure 4: "the SPI filter knows the exact time of closed connections and
// can therefore drop packets more precisely than the bitmap filter".
type flowState uint8

const (
	stateOpen      flowState = iota + 1 // live flow (all UDP flows stay here)
	stateFinLocal                       // client sent FIN
	stateFinRemote                      // remote sent FIN
	stateClosed                         // both FINs, or an RST
)

// flowEntry is the per-flow state all three tables store.
type flowEntry struct {
	lastSeen time.Duration
	state    flowState
}

// nextState advances the TCP teardown state machine for one packet of the
// flow.
func nextState(cur flowState, pkt packet.Packet) flowState {
	if pkt.Tuple.Proto != packet.TCP || cur == stateClosed {
		return cur
	}
	if pkt.Flags&packet.RST != 0 {
		return stateClosed
	}
	if pkt.Flags&packet.FIN != 0 {
		switch {
		case pkt.Dir == packet.Outgoing && cur == stateFinRemote:
			return stateClosed
		case pkt.Dir == packet.Outgoing:
			return stateFinLocal
		case cur == stateFinLocal:
			return stateClosed
		default:
			return stateFinRemote
		}
	}
	return cur
}

// reopens reports whether an outgoing packet may revive a closed flow
// entry: only a fresh SYN (a new connection reusing the tuple) does.
func reopens(pkt packet.Packet) bool {
	return pkt.Tuple.Proto != packet.TCP ||
		(pkt.Flags&packet.SYN != 0 && pkt.Flags&packet.ACK == 0)
}

// entryAction tells a table what to do with a flow entry after decide.
type entryAction uint8

const (
	actLeave  entryAction = iota + 1 // no storage change
	actCreate                        // insert a new entry
	actUpdate                        // write back the returned entry
)

// decide implements the SPI packet semantics shared by all three table
// implementations: outgoing packets create/refresh flow state (subject to
// the closed-flow rule), incoming packets pass only for live, fresh flows.
func decide(e flowEntry, found bool, pkt packet.Packet, idleTimeout time.Duration) (filtering.Verdict, entryAction, flowEntry) {
	fresh := flowEntry{lastSeen: pkt.Time, state: nextState(stateOpen, pkt)}

	if pkt.Dir == packet.Outgoing {
		switch {
		case !found:
			return filtering.Pass, actCreate, fresh
		case pkt.Time-e.lastSeen > idleTimeout:
			// The old entry is dead; this outgoing packet starts
			// over.
			return filtering.Pass, actUpdate, fresh
		case e.state == stateClosed && !reopens(pkt):
			// Late packets of a closed connection do not revive
			// it.
			return filtering.Pass, actLeave, e
		case e.state == stateClosed:
			return filtering.Pass, actUpdate, fresh
		default:
			e.lastSeen = pkt.Time
			e.state = nextState(e.state, pkt)
			return filtering.Pass, actUpdate, e
		}
	}

	if !found || pkt.Time-e.lastSeen > idleTimeout || e.state == stateClosed {
		return filtering.Drop, actLeave, e
	}
	e.lastSeen = pkt.Time
	e.state = nextState(e.state, pkt)
	return filtering.Pass, actUpdate, e
}

// canonicalKey maps a packet to its flow key: outgoing packets key on their
// own tuple, incoming packets on the reverse tuple.
func canonicalKey(pkt packet.Packet) flowKey {
	if pkt.Dir == packet.Outgoing {
		return pkt.Tuple.FullKey()
	}
	return pkt.Tuple.Reverse().FullKey()
}

// clock tracks lazy virtual time shared by all table implementations.
type clock struct {
	now    time.Duration
	nextGC time.Duration
	gcEver bool
}

// due advances the clock to now and reports whether a GC sweep is due.
func (c *clock) due(now time.Duration, interval time.Duration) bool {
	if now > c.now {
		c.now = now
	}
	if !c.gcEver {
		c.gcEver = true
		c.nextGC = c.now + interval
		return false
	}
	if c.now >= c.nextGC {
		c.nextGC = c.now + interval
		return true
	}
	return false
}
