package flowtable

import (
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

func flagged(p packet.Packet, f packet.Flags) packet.Packet {
	p.Flags = f
	return p
}

// closeTables builds one of each implementation for close-tracking tests.
func closeTables() []filtering.PacketFilter {
	return []filtering.PacketFilter{NewHashList(), NewAVLTable(), NewMapTable()}
}

func TestFullCloseDropsLatePackets(t *testing.T) {
	for _, ft := range closeTables() {
		t.Run(ft.Name(), func(t *testing.T) {
			// Handshake + data.
			ft.Process(flagged(outPkt(0, client, server, 4000, 80), packet.SYN))
			ft.Process(flagged(inPkt(100*time.Millisecond, server, client, 80, 4000), packet.SYN|packet.ACK))
			ft.Process(flagged(outPkt(200*time.Millisecond, client, server, 4000, 80), packet.ACK))
			// Orderly close: client FIN, server FIN, client ACK.
			ft.Process(flagged(outPkt(1*time.Second, client, server, 4000, 80), packet.FIN|packet.ACK))
			if v := ft.Process(flagged(inPkt(1100*time.Millisecond, server, client, 80, 4000), packet.FIN|packet.ACK)); v != filtering.Pass {
				t.Fatal("server FIN dropped mid-close")
			}
			ft.Process(flagged(outPkt(1200*time.Millisecond, client, server, 4000, 80), packet.ACK))

			// A post-close straggler within the idle timeout must be
			// dropped: the SPI filter knows the connection closed.
			if v := ft.Process(flagged(inPkt(5*time.Second, server, client, 80, 4000), packet.ACK)); v != filtering.Drop {
				t.Error("post-close packet admitted")
			}
		})
	}
}

func TestRSTClosesImmediately(t *testing.T) {
	for _, ft := range closeTables() {
		t.Run(ft.Name(), func(t *testing.T) {
			ft.Process(flagged(outPkt(0, client, server, 4000, 80), packet.SYN))
			if v := ft.Process(flagged(inPkt(100*time.Millisecond, server, client, 80, 4000), packet.RST)); v != filtering.Pass {
				t.Fatal("RST belonging to the flow dropped")
			}
			if v := ft.Process(flagged(inPkt(200*time.Millisecond, server, client, 80, 4000), packet.ACK)); v != filtering.Drop {
				t.Error("packet after RST admitted")
			}
		})
	}
}

func TestOutgoingRSTClosesToo(t *testing.T) {
	for _, ft := range closeTables() {
		t.Run(ft.Name(), func(t *testing.T) {
			ft.Process(flagged(outPkt(0, client, server, 4000, 80), packet.SYN))
			ft.Process(flagged(outPkt(time.Second, client, server, 4000, 80), packet.RST))
			if v := ft.Process(flagged(inPkt(2*time.Second, server, client, 80, 4000), packet.ACK)); v != filtering.Drop {
				t.Error("packet after outgoing RST admitted")
			}
		})
	}
}

func TestHalfCloseStillPasses(t *testing.T) {
	// After only one side FINs, the other direction is still live.
	for _, ft := range closeTables() {
		t.Run(ft.Name(), func(t *testing.T) {
			ft.Process(flagged(outPkt(0, client, server, 4000, 80), packet.SYN))
			ft.Process(flagged(outPkt(time.Second, client, server, 4000, 80), packet.FIN|packet.ACK))
			// Server still sending data: must pass (half-open).
			if v := ft.Process(flagged(inPkt(2*time.Second, server, client, 80, 4000), packet.ACK)); v != filtering.Pass {
				t.Error("half-closed flow dropped server data")
			}
		})
	}
}

func TestNewSynReopensClosedTuple(t *testing.T) {
	for _, ft := range closeTables() {
		t.Run(ft.Name(), func(t *testing.T) {
			// Open and close a connection.
			ft.Process(flagged(outPkt(0, client, server, 4000, 80), packet.SYN))
			ft.Process(flagged(outPkt(1*time.Second, client, server, 4000, 80), packet.FIN|packet.ACK))
			ft.Process(flagged(inPkt(1100*time.Millisecond, server, client, 80, 4000), packet.FIN|packet.ACK))
			ft.Process(flagged(outPkt(1200*time.Millisecond, client, server, 4000, 80), packet.ACK))
			// Port reuse: a brand-new SYN on the same tuple.
			ft.Process(flagged(outPkt(30*time.Second, client, server, 4000, 80), packet.SYN))
			if v := ft.Process(flagged(inPkt(31*time.Second, server, client, 80, 4000), packet.SYN|packet.ACK)); v != filtering.Pass {
				t.Error("reopened connection's SYN-ACK dropped")
			}
		})
	}
}

func TestLateAckDoesNotReviveClosedFlow(t *testing.T) {
	for _, ft := range closeTables() {
		t.Run(ft.Name(), func(t *testing.T) {
			ft.Process(flagged(outPkt(0, client, server, 4000, 80), packet.SYN))
			ft.Process(flagged(outPkt(1*time.Second, client, server, 4000, 80), packet.FIN|packet.ACK))
			ft.Process(flagged(inPkt(1100*time.Millisecond, server, client, 80, 4000), packet.FIN|packet.ACK))
			// Client's final ACK of the close handshake: outgoing, but
			// must NOT revive the closed flow.
			ft.Process(flagged(outPkt(1200*time.Millisecond, client, server, 4000, 80), packet.ACK))
			if v := ft.Process(flagged(inPkt(2*time.Second, server, client, 80, 4000), packet.ACK)); v != filtering.Drop {
				t.Error("final ACK revived closed flow")
			}
		})
	}
}

func TestUDPUnaffectedByFlags(t *testing.T) {
	for _, ft := range closeTables() {
		t.Run(ft.Name(), func(t *testing.T) {
			q := outPkt(0, client, server, 5353, 53)
			q.Tuple.Proto = packet.UDP
			ft.Process(q)
			r := inPkt(time.Second, server, client, 53, 5353)
			r.Tuple.Proto = packet.UDP
			if v := ft.Process(r); v != filtering.Pass {
				t.Error("UDP reply dropped")
			}
		})
	}
}

func TestCloseTrackingImplementationsAgree(t *testing.T) {
	// Replay a scripted mixed sequence through all three tables.
	type step struct {
		out   bool
		t     time.Duration
		flags packet.Flags
		lport uint16
	}
	script := []step{
		{out: true, t: 0, flags: packet.SYN, lport: 1000},
		{out: false, t: 100 * time.Millisecond, flags: packet.SYN | packet.ACK, lport: 1000},
		{out: true, t: 200 * time.Millisecond, flags: packet.ACK, lport: 1000},
		{out: true, t: 1 * time.Second, flags: packet.SYN, lport: 1001},
		{out: false, t: 2 * time.Second, flags: packet.RST, lport: 1001},
		{out: false, t: 3 * time.Second, flags: packet.ACK, lport: 1001},
		{out: true, t: 4 * time.Second, flags: packet.FIN | packet.ACK, lport: 1000},
		{out: false, t: 5 * time.Second, flags: packet.FIN | packet.ACK, lport: 1000},
		{out: true, t: 6 * time.Second, flags: packet.ACK, lport: 1000},
		{out: false, t: 7 * time.Second, flags: packet.ACK, lport: 1000},
		{out: true, t: 8 * time.Second, flags: packet.SYN, lport: 1000},
		{out: false, t: 9 * time.Second, flags: packet.SYN | packet.ACK, lport: 1000},
	}
	tables := closeTables()
	for i, s := range script {
		var pkt packet.Packet
		if s.out {
			pkt = flagged(outPkt(s.t, client, server, s.lport, 80), s.flags)
		} else {
			pkt = flagged(inPkt(s.t, server, client, 80, s.lport), s.flags)
		}
		v0 := tables[0].Process(pkt)
		for _, ft := range tables[1:] {
			if v := ft.Process(pkt); v != v0 {
				t.Fatalf("step %d: %s says %v, %s says %v", i, tables[0].Name(), v0, ft.Name(), v)
			}
		}
	}
}
