package flowtable

import (
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/hashfam"
	"bitmapfilter/internal/packet"
)

// HashList is the Linux-conntrack-style SPI table of Table 1: a fixed array
// of hash buckets, each a singly-linked list of flow entries. Expected O(1)
// insert and lookup, O(n) garbage collection that "has to traverse all
// states kept in the memory".
type HashList struct {
	opts     options
	buckets  []*listEntry
	mask     uint64
	size     int
	clk      clock
	counters filtering.Counters
}

type listEntry struct {
	key   flowKey
	entry flowEntry
	next  *listEntry
}

var _ filtering.PacketFilter = (*HashList)(nil)

// NewHashList returns an empty conntrack-style table.
func NewHashList(opts ...Option) *HashList {
	o := buildOptions(opts)
	return &HashList{
		opts:    o,
		buckets: make([]*listEntry, o.buckets),
		mask:    uint64(o.buckets - 1),
	}
}

// Name implements filtering.PacketFilter.
func (h *HashList) Name() string { return "spi-hashlist" }

// Len returns the number of live flow entries.
func (h *HashList) Len() int { return h.size }

// MemoryBytes reports the nominal state footprint: 30 bytes per flow (the
// Table 1 accounting) plus the bucket-pointer array.
func (h *HashList) MemoryBytes() uint64 {
	return uint64(h.size)*FlowStateBytes + uint64(len(h.buckets))*8
}

// Counters implements filtering.PacketFilter.
func (h *HashList) Counters() filtering.Counters { return h.counters }

// AdvanceTo implements filtering.PacketFilter.
func (h *HashList) AdvanceTo(now time.Duration) {
	if h.clk.due(now, h.opts.gcInterval) {
		h.gc()
	}
}

// Process implements filtering.PacketFilter: outgoing packets create or
// refresh their flow entry and pass; incoming packets pass only if the
// reverse flow is live (fresh and not closed).
func (h *HashList) Process(pkt packet.Packet) filtering.Verdict {
	h.AdvanceTo(pkt.Time)
	key := canonicalKey(pkt)
	idx := h.index(key)

	e := h.find(idx, key)
	var cur flowEntry
	if e != nil {
		cur = e.entry
	}
	v, act, updated := decide(cur, e != nil, pkt, h.opts.idleTimeout)
	switch act {
	case actCreate:
		h.buckets[idx] = &listEntry{key: key, entry: updated, next: h.buckets[idx]}
		h.size++
	case actUpdate:
		e.entry = updated
	}
	h.counters.Count(pkt, v)
	return v
}

func (h *HashList) index(key flowKey) uint64 {
	return hashfam.Murmur64(key[:], 0) & h.mask
}

func (h *HashList) find(idx uint64, key flowKey) *listEntry {
	for e := h.buckets[idx]; e != nil; e = e.next {
		if e.key == key {
			return e
		}
	}
	return nil
}

// gc removes every entry idle longer than the timeout. As in the real
// conntrack design this walks the entire table.
func (h *HashList) gc() {
	cutoff := h.clk.now - h.opts.idleTimeout
	for i, head := range h.buckets {
		var prev *listEntry
		for e := head; e != nil; {
			next := e.next
			if e.entry.lastSeen < cutoff {
				if prev == nil {
					h.buckets[i] = next
				} else {
					prev.next = next
				}
				h.size--
			} else {
				prev = e
			}
			e = next
		}
	}
}
