package flowtable

import (
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// MapTable is an SPI flow table backed by the Go runtime map. It is not one
// of the paper's baselines; it exists as the idiomatic reference
// implementation for differential testing (all three tables must agree on
// every verdict) and as a benchmark datum.
type MapTable struct {
	opts     options
	flows    map[flowKey]flowEntry
	clk      clock
	counters filtering.Counters
}

var _ filtering.PacketFilter = (*MapTable)(nil)

// NewMapTable returns an empty map-backed flow table.
func NewMapTable(opts ...Option) *MapTable {
	return &MapTable{
		opts:  buildOptions(opts),
		flows: make(map[flowKey]flowEntry, 1<<12),
	}
}

// Name implements filtering.PacketFilter.
func (m *MapTable) Name() string { return "spi-map" }

// Len returns the number of live flow entries.
func (m *MapTable) Len() int { return len(m.flows) }

// MemoryBytes reports the nominal footprint at 30 bytes per flow state.
func (m *MapTable) MemoryBytes() uint64 {
	return uint64(len(m.flows)) * FlowStateBytes
}

// Counters implements filtering.PacketFilter.
func (m *MapTable) Counters() filtering.Counters { return m.counters }

// AdvanceTo implements filtering.PacketFilter.
func (m *MapTable) AdvanceTo(now time.Duration) {
	if m.clk.due(now, m.opts.gcInterval) {
		cutoff := m.clk.now - m.opts.idleTimeout
		for k, e := range m.flows {
			if e.lastSeen < cutoff {
				delete(m.flows, k)
			}
		}
	}
}

// Process implements filtering.PacketFilter.
func (m *MapTable) Process(pkt packet.Packet) filtering.Verdict {
	m.AdvanceTo(pkt.Time)
	key := canonicalKey(pkt)

	e, found := m.flows[key]
	v, act, updated := decide(e, found, pkt, m.opts.idleTimeout)
	if act == actCreate || act == actUpdate {
		m.flows[key] = updated
	}
	m.counters.Count(pkt, v)
	return v
}
