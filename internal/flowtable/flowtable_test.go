package flowtable

import (
	"testing"
	"testing/quick"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

type tableFactory struct {
	name string
	make func(opts ...Option) filtering.PacketFilter
}

func factories() []tableFactory {
	return []tableFactory{
		{name: "hashlist", make: func(opts ...Option) filtering.PacketFilter { return NewHashList(opts...) }},
		{name: "avl", make: func(opts ...Option) filtering.PacketFilter { return NewAVLTable(opts...) }},
		{name: "map", make: func(opts ...Option) filtering.PacketFilter { return NewMapTable(opts...) }},
	}
}

func outPkt(t time.Duration, src, dst packet.Addr, sp, dp uint16) packet.Packet {
	return packet.Packet{
		Time:  t,
		Tuple: packet.Tuple{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: packet.TCP},
		Dir:   packet.Outgoing,
	}
}

func inPkt(t time.Duration, src, dst packet.Addr, sp, dp uint16) packet.Packet {
	return packet.Packet{
		Time:  t,
		Tuple: packet.Tuple{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: packet.TCP},
		Dir:   packet.Incoming,
	}
}

var (
	client = packet.AddrFrom4(10, 0, 0, 1)
	server = packet.AddrFrom4(198, 51, 100, 7)
)

func TestReplyAdmittedAfterRequest(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ft := f.make()
			if v := ft.Process(outPkt(0, client, server, 4000, 80)); v != filtering.Pass {
				t.Fatal("outgoing packet dropped")
			}
			if v := ft.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
				t.Error("reply dropped")
			}
		})
	}
}

func TestUnsolicitedIncomingDropped(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ft := f.make()
			if v := ft.Process(inPkt(0, server, client, 80, 4000)); v != filtering.Drop {
				t.Error("unsolicited incoming packet passed")
			}
		})
	}
}

func TestReplyFromDifferentRemotePortDropped(t *testing.T) {
	// SPI tables are exact: unlike the bitmap filter, a reply from a
	// different remote port does not match.
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ft := f.make()
			ft.Process(outPkt(0, client, server, 4000, 80))
			if v := ft.Process(inPkt(time.Second, server, client, 8080, 4000)); v != filtering.Drop {
				t.Error("reply from different remote port passed exact-match SPI")
			}
		})
	}
}

func TestIdleTimeoutExpiresFlow(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ft := f.make(WithIdleTimeout(240*time.Second), WithGCInterval(10*time.Second))
			ft.Process(outPkt(0, client, server, 4000, 80))
			// Within the timeout: admitted.
			if v := ft.Process(inPkt(239*time.Second, server, client, 80, 4000)); v != filtering.Pass {
				t.Fatal("reply within timeout dropped")
			}
			// 239s + 241s idle: the entry must be stale now.
			if v := ft.Process(inPkt(480*time.Second, server, client, 80, 4000)); v != filtering.Drop {
				t.Error("reply after idle timeout passed")
			}
		})
	}
}

func TestActivityRefreshesFlow(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ft := f.make(WithIdleTimeout(100 * time.Second))
			ft.Process(outPkt(0, client, server, 4000, 80))
			// Keep the flow alive with outgoing packets every 50s.
			for ts := 50 * time.Second; ts <= 500*time.Second; ts += 50 * time.Second {
				ft.Process(outPkt(ts, client, server, 4000, 80))
			}
			if v := ft.Process(inPkt(540*time.Second, server, client, 80, 4000)); v != filtering.Pass {
				t.Error("refreshed flow expired")
			}
		})
	}
}

func TestIncomingActivityAlsoRefreshes(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ft := f.make(WithIdleTimeout(100 * time.Second))
			ft.Process(outPkt(0, client, server, 4000, 80))
			if v := ft.Process(inPkt(90*time.Second, server, client, 80, 4000)); v != filtering.Pass {
				t.Fatal("first reply dropped")
			}
			// 90s+95s = 185s from the outgoing packet, but only 95s from
			// the last incoming packet: must still pass.
			if v := ft.Process(inPkt(185*time.Second, server, client, 80, 4000)); v != filtering.Pass {
				t.Error("incoming activity did not refresh flow")
			}
		})
	}
}

func TestGarbageCollectionShrinksTable(t *testing.T) {
	tests := []struct {
		name string
		mk   func(opts ...Option) interface {
			filtering.PacketFilter
			Len() int
		}
	}{
		{name: "hashlist", mk: func(opts ...Option) interface {
			filtering.PacketFilter
			Len() int
		} {
			return NewHashList(opts...)
		}},
		{name: "avl", mk: func(opts ...Option) interface {
			filtering.PacketFilter
			Len() int
		} {
			return NewAVLTable(opts...)
		}},
		{name: "map", mk: func(opts ...Option) interface {
			filtering.PacketFilter
			Len() int
		} {
			return NewMapTable(opts...)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ft := tt.mk(WithIdleTimeout(60*time.Second), WithGCInterval(5*time.Second))
			for i := 0; i < 1000; i++ {
				ft.Process(outPkt(0, client, server, uint16(1000+i), 80))
			}
			if ft.Len() != 1000 {
				t.Fatalf("Len = %d after inserts", ft.Len())
			}
			before := ft.MemoryBytes()
			// Advance far past the timeout; GC must fire and drain.
			ft.AdvanceTo(300 * time.Second)
			ft.AdvanceTo(310 * time.Second)
			if ft.Len() != 0 {
				t.Errorf("Len = %d after GC", ft.Len())
			}
			if ft.MemoryBytes() >= before {
				t.Errorf("memory did not shrink: %d -> %d", before, ft.MemoryBytes())
			}
		})
	}
}

func TestCountersAccumulate(t *testing.T) {
	ft := NewMapTable()
	ft.Process(outPkt(0, client, server, 4000, 80))
	ft.Process(inPkt(time.Second, server, client, 80, 4000))
	ft.Process(inPkt(2*time.Second, server, client, 80, 9999)) // unsolicited
	c := ft.Counters()
	if c.OutPackets != 1 || c.InPackets != 2 || c.InPassed != 1 || c.InDropped != 1 {
		t.Errorf("counters = %+v", c)
	}
	if got := c.DropRate(); got != 0.5 {
		t.Errorf("DropRate = %v", got)
	}
}

func TestDropRateNoTraffic(t *testing.T) {
	var c filtering.Counters
	if c.DropRate() != 0 {
		t.Error("DropRate on empty counters nonzero")
	}
}

func TestVerdictString(t *testing.T) {
	if filtering.Pass.String() != "pass" || filtering.Drop.String() != "drop" {
		t.Error("verdict strings wrong")
	}
	if filtering.Verdict(0).String() != "verdict(?)" {
		t.Error("unknown verdict string wrong")
	}
}

// Differential property: all three SPI implementations return identical
// verdicts on any packet sequence (they implement the same abstract table).
func TestImplementationsAgree(t *testing.T) {
	type step struct {
		Out   bool
		Host  uint8
		Rport uint8
		Lport uint8
		Gap   uint16
	}
	f := func(steps []step) bool {
		hl := NewHashList(WithIdleTimeout(80*time.Second), WithGCInterval(7*time.Second))
		av := NewAVLTable(WithIdleTimeout(80*time.Second), WithGCInterval(7*time.Second))
		mp := NewMapTable(WithIdleTimeout(80*time.Second), WithGCInterval(7*time.Second))
		now := time.Duration(0)
		for _, s := range steps {
			now += time.Duration(s.Gap) * time.Millisecond * 40
			remote := packet.AddrFrom4(198, 51, 100, s.Host)
			lport := 1000 + uint16(s.Lport)
			rport := 1 + uint16(s.Rport)
			var pkt packet.Packet
			if s.Out {
				pkt = outPkt(now, client, remote, lport, rport)
			} else {
				pkt = inPkt(now, remote, client, rport, lport)
			}
			v1, v2, v3 := hl.Process(pkt), av.Process(pkt), mp.Process(pkt)
			if v1 != v2 || v2 != v3 {
				return false
			}
		}
		return hl.Len() == mp.Len() && av.Len() == mp.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Large randomized differential test with realistic request/reply mixes.
func TestImplementationsAgreeUnderLoad(t *testing.T) {
	hl := NewHashList(WithIdleTimeout(60 * time.Second))
	av := NewAVLTable(WithIdleTimeout(60 * time.Second))
	mp := NewMapTable(WithIdleTimeout(60 * time.Second))
	r := xrand.New(77)
	now := time.Duration(0)
	for i := 0; i < 50000; i++ {
		now += time.Duration(r.Intn(200)) * time.Millisecond
		remote := packet.AddrFrom4(198, 51, 100, byte(r.Intn(50)))
		lport := uint16(1024 + r.Intn(200))
		rport := uint16(1 + r.Intn(5))
		var pkt packet.Packet
		if r.Bool(0.6) {
			pkt = outPkt(now, client, remote, lport, rport)
		} else {
			pkt = inPkt(now, remote, client, rport, lport)
		}
		v1, v2, v3 := hl.Process(pkt), av.Process(pkt), mp.Process(pkt)
		if v1 != v2 || v2 != v3 {
			t.Fatalf("packet %d (%v): verdicts %v/%v/%v", i, pkt, v1, v2, v3)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	// Non-positive options fall back to defaults rather than breaking.
	ft := NewHashList(WithIdleTimeout(-1), WithGCInterval(0), WithBuckets(-5))
	if ft.opts.idleTimeout != DefaultIdleTimeout {
		t.Errorf("idleTimeout = %v", ft.opts.idleTimeout)
	}
	if ft.opts.gcInterval != DefaultGCInterval {
		t.Errorf("gcInterval = %v", ft.opts.gcInterval)
	}
	if ft.opts.buckets <= 0 {
		t.Errorf("buckets = %d", ft.opts.buckets)
	}
}

func TestBucketsRoundedToPowerOfTwo(t *testing.T) {
	ft := NewHashList(WithBuckets(1000))
	if b := ft.opts.buckets; b != 1024 {
		t.Errorf("buckets = %d, want 1024", b)
	}
}

func TestHashListCollisionChains(t *testing.T) {
	// Force every flow into very few buckets and verify chained lookups.
	ft := NewHashList(WithBuckets(2))
	const n = 500
	for i := 0; i < n; i++ {
		ft.Process(outPkt(0, client, server, uint16(1000+i), 80))
	}
	if ft.Len() != n {
		t.Fatalf("Len = %d", ft.Len())
	}
	for i := 0; i < n; i++ {
		if v := ft.Process(inPkt(time.Second, server, client, 80, uint16(1000+i))); v != filtering.Pass {
			t.Fatalf("chained lookup failed for flow %d", i)
		}
	}
}

func TestUDPAndTCPFlowsDistinct(t *testing.T) {
	ft := NewMapTable()
	tcp := outPkt(0, client, server, 4000, 53)
	ft.Process(tcp)
	udpReply := inPkt(time.Second, server, client, 53, 4000)
	udpReply.Tuple.Proto = packet.UDP
	if v := ft.Process(udpReply); v != filtering.Drop {
		t.Error("UDP reply matched TCP flow")
	}
}

func benchTable(b *testing.B, ft filtering.PacketFilter) {
	r := xrand.New(1)
	pkts := make([]packet.Packet, 1<<14)
	for i := range pkts {
		remote := packet.AddrFrom4(198, 51, 100, byte(r.Intn(256)))
		lport := uint16(1024 + r.Intn(4000))
		if r.Bool(0.6) {
			pkts[i] = outPkt(time.Duration(i)*time.Millisecond, client, remote, lport, 80)
		} else {
			pkts[i] = inPkt(time.Duration(i)*time.Millisecond, remote, client, 80, lport)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Process(pkts[i&(1<<14-1)])
	}
}

func BenchmarkHashListProcess(b *testing.B) { benchTable(b, NewHashList()) }
func BenchmarkAVLProcess(b *testing.B)      { benchTable(b, NewAVLTable()) }
func BenchmarkMapProcess(b *testing.B)      { benchTable(b, NewMapTable()) }
