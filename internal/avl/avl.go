// Package avl implements a self-balancing AVL search tree. It is the
// substrate for the AVL-tree flow table of Table 1 in the paper, which the
// authors list as "an implementation that efficiently reduces the time
// complexity searching flow states" — O(log n) insert and lookup versus the
// O(n) worst case of a hash + linked-list table.
package avl

import "cmp"

// Tree is an AVL tree mapping ordered keys to values. The zero value is an
// empty tree ready for use. Tree is not safe for concurrent use.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
	size int
}

type node[K cmp.Ordered, V any] struct {
	key         K
	value       V
	left, right *node[K, V]
	height      int8
}

// Len returns the number of entries in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key and whether it was present.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.value, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key. It reports whether a new
// entry was created (false means an existing entry was updated).
func (t *Tree[K, V]) Put(key K, value V) bool {
	var created bool
	t.root, created = insert(t.root, key, value)
	if created {
		t.size++
	}
	return created
}

// Delete removes key from the tree and reports whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	var deleted bool
	t.root, deleted = remove(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

// Min returns the smallest key and its value. ok is false for an empty
// tree.
func (t *Tree[K, V]) Min() (key K, value V, ok bool) {
	n := t.root
	if n == nil {
		return key, value, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.value, true
}

// Ascend calls fn for every entry in ascending key order until fn returns
// false.
func (t *Tree[K, V]) Ascend(fn func(key K, value V) bool) {
	ascend(t.root, fn)
}

func ascend[K cmp.Ordered, V any](n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return ascend(n.right, fn)
}

// DeleteWhere removes every entry for which pred returns true and returns
// the number of removals. This is the garbage-collection sweep of an
// AVL-based flow table: O(n) traversal plus O(log n) per removal.
func (t *Tree[K, V]) DeleteWhere(pred func(key K, value V) bool) int {
	var doomed []K
	t.Ascend(func(k K, v V) bool {
		if pred(k, v) {
			doomed = append(doomed, k)
		}
		return true
	})
	for _, k := range doomed {
		t.Delete(k)
	}
	return len(doomed)
}

// Height returns the height of the tree (0 for empty).
func (t *Tree[K, V]) Height() int { return int(height(t.root)) }

func height[K cmp.Ordered, V any](n *node[K, V]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func fix[K cmp.Ordered, V any](n *node[K, V]) {
	lh, rh := height(n.left), height(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

func balanceFactor[K cmp.Ordered, V any](n *node[K, V]) int8 {
	return height(n.left) - height(n.right)
}

func rotateRight[K cmp.Ordered, V any](y *node[K, V]) *node[K, V] {
	x := y.left
	y.left = x.right
	x.right = y
	fix(y)
	fix(x)
	return x
}

func rotateLeft[K cmp.Ordered, V any](x *node[K, V]) *node[K, V] {
	y := x.right
	x.right = y.left
	y.left = x
	fix(x)
	fix(y)
	return y
}

func rebalance[K cmp.Ordered, V any](n *node[K, V]) *node[K, V] {
	fix(n)
	bf := balanceFactor(n)
	switch {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func insert[K cmp.Ordered, V any](n *node[K, V], key K, value V) (*node[K, V], bool) {
	if n == nil {
		return &node[K, V]{key: key, value: value, height: 1}, true
	}
	var created bool
	switch {
	case key < n.key:
		n.left, created = insert(n.left, key, value)
	case key > n.key:
		n.right, created = insert(n.right, key, value)
	default:
		n.value = value
		return n, false
	}
	return rebalance(n), created
}

func remove[K cmp.Ordered, V any](n *node[K, V], key K) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key < n.key:
		n.left, deleted = remove(n.left, key)
	case key > n.key:
		n.right, deleted = remove(n.right, key)
	default:
		deleted = true
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		default:
			// Replace with the in-order successor.
			succ := n.right
			for succ.left != nil {
				succ = succ.left
			}
			n.key, n.value = succ.key, succ.value
			n.right, _ = remove(n.right, succ.key)
		}
	}
	return rebalance(n), deleted
}
