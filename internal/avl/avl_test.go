package avl

import (
	"cmp"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"bitmapfilter/internal/xrand"
)

// validate checks the AVL and BST invariants of the whole tree.
func validate[K cmp.Ordered, V any](t *testing.T, tr *Tree[K, V]) {
	t.Helper()
	var walk func(n *node[K, V]) (int8, int)
	walk = func(n *node[K, V]) (int8, int) {
		if n == nil {
			return 0, 0
		}
		lh, lc := walk(n.left)
		rh, rc := walk(n.right)
		if n.left != nil && !(n.left.key < n.key) {
			t.Fatalf("BST violation at %v", n.key)
		}
		if n.right != nil && !(n.key < n.right.key) {
			t.Fatalf("BST violation at %v", n.key)
		}
		bf := lh - rh
		if bf < -1 || bf > 1 {
			t.Fatalf("AVL violation at %v: balance %d", n.key, bf)
		}
		h := lh
		if rh > h {
			h = rh
		}
		if n.height != h+1 {
			t.Fatalf("stale height at %v: %d want %d", n.key, n.height, h+1)
		}
		return h + 1, lc + rc + 1
	}
	_, count := walk(tr.root)
	if count != tr.Len() {
		t.Fatalf("Len = %d but tree holds %d nodes", tr.Len(), count)
	}
}

func TestEmptyTree(t *testing.T) {
	var tr Tree[int, string]
	if tr.Len() != 0 {
		t.Error("fresh tree not empty")
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty tree returned ok")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty tree returned true")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree returned ok")
	}
	if tr.Height() != 0 {
		t.Errorf("Height = %d", tr.Height())
	}
}

func TestPutGetDelete(t *testing.T) {
	var tr Tree[int, int]
	for i := 0; i < 100; i++ {
		if !tr.Put(i, i*10) {
			t.Fatalf("Put(%d) reported existing", i)
		}
	}
	validate(t, &tr)
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get(i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	// Update in place.
	if tr.Put(50, 999) {
		t.Error("updating Put reported created")
	}
	if v, _ := tr.Get(50); v != 999 {
		t.Errorf("updated value = %d", v)
	}
	if tr.Len() != 100 {
		t.Errorf("Len after update = %d", tr.Len())
	}
	// Delete half.
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	validate(t, &tr)
	if tr.Len() != 50 {
		t.Errorf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	var tr Tree[int, int]
	tr.Put(1, 1)
	if tr.Delete(2) {
		t.Error("Delete of absent key returned true")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestMinAndAscend(t *testing.T) {
	var tr Tree[int, int]
	r := xrand.New(1)
	keys := r.Perm(500)
	for _, k := range keys {
		tr.Put(k, k)
	}
	k, v, ok := tr.Min()
	if !ok || k != 0 || v != 0 {
		t.Errorf("Min = %d,%d,%v", k, v, ok)
	}
	var got []int
	tr.Ascend(func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	if !sort.IntsAreSorted(got) {
		t.Error("Ascend not in order")
	}
	if len(got) != 500 {
		t.Errorf("Ascend visited %d", len(got))
	}
	// Early termination.
	var firstTen []int
	tr.Ascend(func(k, _ int) bool {
		firstTen = append(firstTen, k)
		return len(firstTen) < 10
	})
	if len(firstTen) != 10 {
		t.Errorf("early-stop Ascend visited %d", len(firstTen))
	}
}

func TestDeleteWhere(t *testing.T) {
	var tr Tree[int, int]
	for i := 0; i < 100; i++ {
		tr.Put(i, i)
	}
	n := tr.DeleteWhere(func(k, _ int) bool { return k%3 == 0 })
	if n != 34 {
		t.Errorf("DeleteWhere removed %d, want 34", n)
	}
	validate(t, &tr)
	tr.Ascend(func(k, _ int) bool {
		if k%3 == 0 {
			t.Fatalf("key %d survived DeleteWhere", k)
		}
		return true
	})
}

func TestHeightLogarithmic(t *testing.T) {
	var tr Tree[int, struct{}]
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Put(i, struct{}{}) // worst case: sorted insertion
	}
	validate(t, &tr)
	maxHeight := int(1.45*math.Log2(n+2)) + 1
	if h := tr.Height(); h > maxHeight {
		t.Errorf("height %d exceeds AVL bound %d for n=%d", h, maxHeight, n)
	}
}

func TestRandomOperationsAgainstMap(t *testing.T) {
	var tr Tree[uint32, int]
	ref := make(map[uint32]int)
	r := xrand.New(42)
	for op := 0; op < 20000; op++ {
		k := uint32(r.Intn(2000))
		switch r.Intn(3) {
		case 0:
			v := int(r.Uint32())
			created := tr.Put(k, v)
			_, existed := ref[k]
			if created == existed {
				t.Fatalf("op %d: Put created=%v but existed=%v", op, created, existed)
			}
			ref[k] = v
		case 1:
			deleted := tr.Delete(k)
			_, existed := ref[k]
			if deleted != existed {
				t.Fatalf("op %d: Delete=%v existed=%v", op, deleted, existed)
			}
			delete(ref, k)
		case 2:
			v, ok := tr.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, v, ok, rv, rok)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Errorf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	validate(t, &tr)
}

func TestStringKeys(t *testing.T) {
	var tr Tree[string, int]
	words := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, w := range words {
		tr.Put(w, i)
	}
	k, _, _ := tr.Min()
	if k != "alpha" {
		t.Errorf("Min = %q", k)
	}
	var order []string
	tr.Ascend(func(k string, _ int) bool {
		order = append(order, k)
		return true
	})
	if !sort.StringsAreSorted(order) {
		t.Errorf("order = %v", order)
	}
}

func TestInvariantProperty(t *testing.T) {
	f := func(keys []uint16, dels []uint16) bool {
		var tr Tree[uint16, bool]
		for _, k := range keys {
			tr.Put(k, true)
		}
		for _, k := range dels {
			tr.Delete(k)
		}
		// Re-validate invariants without t.Fatal (quick runs its own loop).
		ok := true
		var walk func(n *node[uint16, bool]) int8
		walk = func(n *node[uint16, bool]) int8 {
			if n == nil || !ok {
				return 0
			}
			lh, rh := walk(n.left), walk(n.right)
			if n.left != nil && n.left.key >= n.key {
				ok = false
			}
			if n.right != nil && n.right.key <= n.key {
				ok = false
			}
			if bf := lh - rh; bf < -1 || bf > 1 {
				ok = false
			}
			h := lh
			if rh > h {
				h = rh
			}
			return h + 1
		}
		walk(tr.root)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPut(b *testing.B) {
	var tr Tree[uint64, int]
	r := xrand.New(1)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i&(1<<16-1)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	var tr Tree[uint64, int]
	r := xrand.New(1)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = r.Uint64()
		tr.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i&(1<<16-1)])
	}
}
