package capture

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"bitmapfilter/internal/pcap"
)

// Replay streams a pcap capture as a Source. With Loops > 1 the trace is
// replayed back-to-back: timestamps of later passes are shifted so the
// stream's clock is monotonic, letting a short recorded burst stand in
// for an arbitrarily long live run (the 500K pps saturation benchmark
// replays one generated second many times over).
type Replay struct {
	src    io.ReadSeeker
	rd     *pcap.Reader
	loops  int // passes remaining, including the current one
	offset time.Duration
	last   time.Duration // last raw timestamp seen this pass
	read   bool          // any record read this pass
	closed atomic.Bool   // set by Close, possibly from another goroutine
}

// NewReplay opens a pcap stream for replay. loops is the total number of
// passes over the trace; values below 1 mean a single pass.
func NewReplay(src io.ReadSeeker, loops int) (*Replay, error) {
	rd, err := pcap.NewReader(src)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	if loops < 1 {
		loops = 1
	}
	return &Replay{src: src, rd: rd, loops: loops}, nil
}

// rewind seeks back to the first record for the next pass and advances
// the time offset so replayed timestamps keep increasing.
func (r *Replay) rewind() error {
	if _, err := r.src.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("capture: rewind: %w", err)
	}
	rd, err := pcap.NewReader(r.src)
	if err != nil {
		return fmt.Errorf("capture: rewind: %w", err)
	}
	r.rd = rd
	// The next pass restarts at its own recorded base; shifting by the
	// last timestamp seen (plus a tick so equality never happens) keeps
	// the synthetic clock strictly monotonic across the seam.
	r.offset += r.last + time.Microsecond
	r.last = 0
	r.read = false
	return nil
}

// ReadBatch implements Source. Frames come out with their recorded
// timestamps shifted by the accumulated loop offset.
func (r *Replay) ReadBatch(frames []Frame) (int, error) {
	n := 0
	for n < len(frames) {
		// Checked per record so a concurrent Close (the daemon's signal
		// handler) ends the replay at the next frame boundary.
		if r.closed.Load() {
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		rec, err := r.rd.ReadRecordInto(frames[n].Data[:0])
		if errors.Is(err, io.EOF) {
			// An empty trace must not loop forever.
			if r.loops <= 1 || !r.read {
				if n > 0 {
					return n, nil
				}
				return 0, io.EOF
			}
			r.loops--
			if rerr := r.rewind(); rerr != nil {
				return n, rerr
			}
			continue
		}
		if err != nil {
			return n, fmt.Errorf("capture: %w", err)
		}
		r.read = true
		r.last = rec.Time
		frames[n].Time = rec.Time + r.offset
		frames[n].Data = rec.Data
		frames[n].OrigLen = rec.OrigLen
		if frames[n].OrigLen == 0 {
			frames[n].OrigLen = len(rec.Data)
		}
		n++
	}
	return n, nil
}

// Close implements Source. It is idempotent and safe to call from a
// goroutine other than the reader: ReadBatch observes the flag at the
// next frame boundary and returns io.EOF.
func (r *Replay) Close() error {
	r.closed.Store(true)
	return nil
}

// PcapSink writes frames to a pcap stream.
type PcapSink struct {
	w *pcap.Writer
}

// NewPcapSink writes a pcap global header to w and returns the sink.
func NewPcapSink(w io.Writer) (*PcapSink, error) {
	pw, err := pcap.NewWriter(w)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return &PcapSink{w: pw}, nil
}

// WriteFrame implements Sink.
func (s *PcapSink) WriteFrame(f Frame) error {
	return s.w.WriteRecord(pcap.Record{Time: f.Time, Data: f.Data, OrigLen: f.OrigLen})
}

// Close implements Sink. The pcap format needs no trailer.
func (s *PcapSink) Close() error { return nil }
