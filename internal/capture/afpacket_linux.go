//go:build linux && afpacket

package capture

import (
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"time"
)

// AFPacket reads raw Ethernet frames from a Linux AF_PACKET socket. It is
// the live-NIC backend of the packet plane and is compiled only with the
// "afpacket" build tag: the raw socket needs CAP_NET_RAW, which hermetic
// test environments do not have.
//
// Timestamps are offsets of the receive moment from the socket's open
// time, so the pump downstream sees the same monotonic virtual clock a
// replayed trace provides.
type AFPacket struct {
	fd      int
	epoch   time.Time
	snapLen int
	closed  atomic.Bool
}

// ethPAll is ETH_P_ALL: receive every protocol, both directions.
const ethPAll = 0x0003

// htons converts to the big-endian representation AF_PACKET's protocol
// field expects.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

// NewAFPacket opens a raw packet socket bound to the named interface
// (all interfaces when iface is empty). snapLen caps the bytes copied
// per frame; longer frames are truncated with OrigLen preserved.
func NewAFPacket(iface string, snapLen int) (*AFPacket, error) {
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(ethPAll)))
	if err != nil {
		return nil, fmt.Errorf("capture: afpacket socket: %w", err)
	}
	if iface != "" {
		ifi, err := net.InterfaceByName(iface)
		if err != nil {
			syscall.Close(fd)
			return nil, fmt.Errorf("capture: %w", err)
		}
		sll := &syscall.SockaddrLinklayer{Protocol: htons(ethPAll), Ifindex: ifi.Index}
		if err := syscall.Bind(fd, sll); err != nil {
			syscall.Close(fd)
			return nil, fmt.Errorf("capture: bind %s: %w", iface, err)
		}
	}
	return &AFPacket{fd: fd, epoch: time.Now(), snapLen: snapLen}, nil
}

// ReadBatch implements Source: it blocks for the first frame, then
// drains whatever else the socket already holds without blocking, so a
// quiet link yields single-frame batches while a saturated one fills the
// ring.
func (a *AFPacket) ReadBatch(frames []Frame) (int, error) {
	n := 0
	for n < len(frames) {
		buf := frames[n].Data[:cap(frames[n].Data)]
		if len(buf) > a.snapLen {
			buf = buf[:a.snapLen]
		}
		flags := syscall.MSG_TRUNC
		if n > 0 {
			flags |= syscall.MSG_DONTWAIT
		}
		m, _, err := syscall.Recvfrom(a.fd, buf, flags)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			if n > 0 && (err == syscall.EAGAIN || err == syscall.EWOULDBLOCK) {
				return n, nil
			}
			return n, fmt.Errorf("capture: recvfrom: %w", err)
		}
		// With MSG_TRUNC the return value is the frame's true wire
		// length even when it exceeded the buffer.
		frames[n].Time = time.Since(a.epoch)
		frames[n].OrigLen = m
		if m > len(buf) {
			m = len(buf)
		}
		frames[n].Data = buf[:m]
		n++
	}
	return n, nil
}

// Close implements Source. It is idempotent: the daemon closes the
// source both from its signal handler and on the way out, and a second
// syscall.Close on a since-reused fd number would hit an unrelated file.
func (a *AFPacket) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	return syscall.Close(a.fd)
}
