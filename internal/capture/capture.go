// Package capture abstracts where live frames come from and go to, so the
// bfwall daemon's pump loop is identical whether it faces a real NIC or a
// replayed trace.
//
// A Source fills caller-owned frame buffers in batches — the ring from
// NewRing is allocated once and reused for the life of the pump, keeping
// the hot loop at zero allocations per frame. Two sources ship in the
// base build: Replay, which streams a pcap capture (optionally looping it
// to synthesize arbitrarily long runs from a short trace), and Loopback,
// an in-memory queue for tests and demos. The AF_PACKET backend that
// binds a real interface lives behind the "afpacket" build tag (Linux
// only); hermetic builds and CI never compile it.
//
// Timestamps are offsets on the source's own clock: a replayed trace
// carries its recorded virtual time (so filters rotate exactly as they
// would have live), and the AF_PACKET source stamps frames with the
// elapsed wall time since it opened. Either way the pump downstream is
// deterministic given the frame stream.
package capture

import "time"

// Frame is one captured frame. Data aliases a buffer owned by the reader
// of the batch and is valid only until the next ReadBatch call that
// reuses it.
type Frame struct {
	// Time is the capture timestamp as an offset on the source's clock.
	Time time.Duration
	// Data holds the captured bytes.
	Data []byte
	// OrigLen is the frame's length on the wire, which exceeds len(Data)
	// when the capture truncated it (snapshot length, small ring buffer).
	OrigLen int
}

// Truncated reports whether the frame was captured short.
func (f Frame) Truncated() bool { return f.OrigLen > len(f.Data) }

// Source yields batches of captured frames.
type Source interface {
	// ReadBatch fills up to len(frames) entries, reusing each entry's
	// Data capacity when it suffices, and returns how many were filled.
	// It blocks until at least one frame is available; n == 0 is returned
	// only with a non-nil error, io.EOF meaning the source is exhausted
	// (a finite trace fully replayed, or the source closed).
	ReadBatch(frames []Frame) (int, error)
	// Close releases the source. Blocked ReadBatch calls return. Close
	// is idempotent and may be called from a goroutine other than the
	// reader (a signal handler interrupting the pump).
	Close() error
}

// Sink consumes frames (a pcap writer, an injection queue).
type Sink interface {
	// WriteFrame records one frame. The implementation must not retain
	// f.Data past the call.
	WriteFrame(f Frame) error
	Close() error
}

// DefaultSnapLen is the per-frame buffer capacity NewRing uses when the
// caller passes snapLen <= 0: a full Ethernet frame.
const DefaultSnapLen = 1 << 16

// NewRing allocates n reusable frame buffers for ReadBatch. Every Data
// slice has capacity snapLen; sources slice it down to each frame's
// captured length without reallocating.
func NewRing(n, snapLen int) []Frame {
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	ring := make([]Frame, n)
	for i := range ring {
		ring[i].Data = make([]byte, 0, snapLen)
	}
	return ring
}
