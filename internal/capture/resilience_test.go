package capture_test

// External test package: these tests pin the Source error contract the
// resilience layer is built on, so they import resilience to assert how
// each failure classifies (capture cannot import resilience internally —
// the dependency runs the other way).

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/pcap"
	"bitmapfilter/internal/resilience"
)

func trace(t testing.TB, count int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		p := packet.Packet{
			Time: time.Duration(i+1) * time.Millisecond,
			Tuple: packet.Tuple{
				Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 1),
				SrcPort: uint16(1024 + i), DstPort: 80, Proto: packet.TCP,
			},
			Dir: packet.Outgoing, Flags: packet.SYN, Length: 60,
		}
		frame, err := packet.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(pcap.Record{Time: p.Time, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestLoopbackCloseDuringRead: Close from another goroutine must wake a
// blocked reader with io.EOF — the clean-shutdown signal the supervisor
// and the pump both treat as "stop, nothing is wrong".
func TestLoopbackCloseDuringRead(t *testing.T) {
	lb := capture.NewLoopback()
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		ring := capture.NewRing(4, 256)
		n, err := lb.ReadBatch(ring)
		done <- result{n, err}
	}()
	// Let the reader park on the empty queue, then close under it.
	time.Sleep(10 * time.Millisecond)
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.n != 0 || !errors.Is(res.err, io.EOF) {
			t.Errorf("ReadBatch after close = (%d, %v), want (0, io.EOF)", res.n, res.err)
		}
		if got := resilience.Classify(res.err); got != resilience.ClassEOF {
			t.Errorf("close-during-read classifies %v, want ClassEOF", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader still blocked after Close")
	}
}

// TestReplayCorruptRecordMidStream: a trace truncated inside a record
// must deliver every intact frame and then fail with
// io.ErrUnexpectedEOF — a transient error (retry, reopen), never a
// clean EOF (which would silently drop the tail) and never fatal.
func TestReplayCorruptRecordMidStream(t *testing.T) {
	full := trace(t, 5)
	cut := append([]byte(nil), full[:len(full)-10]...) // tear the last record
	r, err := capture.NewReplay(bytes.NewReader(cut), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ring := capture.NewRing(16, 2048)
	got := 0
	var readErr error
	for {
		n, err := r.ReadBatch(ring)
		got += n
		if err != nil {
			readErr = err
			break
		}
	}
	if got != 4 {
		t.Errorf("intact frames delivered = %d, want 4", got)
	}
	if !errors.Is(readErr, io.ErrUnexpectedEOF) {
		t.Errorf("mid-record truncation error = %v, want io.ErrUnexpectedEOF", readErr)
	}
	if got := resilience.Classify(readErr); got != resilience.ClassTransient {
		t.Errorf("truncation classifies %v, want ClassTransient", got)
	}
}

// TestReplayBadMagicIsFatal: garbage that is not a pcap at all must fail
// at open with pcap.ErrBadMagic — a fatal, do-not-retry error.
func TestReplayBadMagicIsFatal(t *testing.T) {
	garbage := []byte("this is definitely not a pcap capture file")
	_, err := capture.NewReplay(bytes.NewReader(garbage), 1)
	if !errors.Is(err, pcap.ErrBadMagic) {
		t.Fatalf("open error = %v, want pcap.ErrBadMagic", err)
	}
	if got := resilience.Classify(err); got != resilience.ClassFatal {
		t.Errorf("bad magic classifies %v, want ClassFatal", got)
	}
}
