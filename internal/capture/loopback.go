package capture

import (
	"errors"
	"io"
	"sync"
)

// ErrClosed is returned by Loopback.WriteFrame after Close.
var ErrClosed = errors.New("capture: loopback closed")

// Loopback is an in-memory Source and Sink pair: frames written on one
// side come out the other in order. It exists so the bfwall pump and its
// tests can run hermetically — no NIC, no trace file — and it is safe for
// one writer and one reader goroutine.
type Loopback struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Frame // data slices owned by the queue
	closed bool
}

// NewLoopback returns an empty loopback pair.
func NewLoopback() *Loopback {
	l := &Loopback{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// WriteFrame implements Sink. The frame bytes are copied; the caller may
// reuse f.Data immediately.
func (l *Loopback) WriteFrame(f Frame) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	queued := f
	queued.Data = append([]byte(nil), f.Data...)
	if queued.OrigLen == 0 {
		queued.OrigLen = len(f.Data)
	}
	l.queue = append(l.queue, queued)
	l.cond.Signal()
	return nil
}

// ReadBatch implements Source: it blocks until at least one frame is
// queued or the loopback is closed, then drains up to len(frames) entries
// into the caller's buffers.
func (l *Loopback) ReadBatch(frames []Frame) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 {
		if l.closed {
			return 0, io.EOF
		}
		l.cond.Wait()
	}
	n := 0
	for n < len(frames) && n < len(l.queue) {
		q := l.queue[n]
		frames[n].Time = q.Time
		frames[n].OrigLen = q.OrigLen
		frames[n].Data = append(frames[n].Data[:0], q.Data...)
		n++
	}
	l.queue = l.queue[:copy(l.queue, l.queue[n:])]
	return n, nil
}

// Close implements both Source and Sink: subsequent writes fail, readers
// drain whatever is already queued and then get io.EOF.
func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
	return nil
}
