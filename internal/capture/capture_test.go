package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/pcap"
)

// makeTrace encodes count frames, 1ms apart, into an in-memory pcap.
func makeTrace(t testing.TB, count int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		p := packet.Packet{
			Time: time.Duration(i+1) * time.Millisecond,
			Tuple: packet.Tuple{
				Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 1),
				SrcPort: uint16(1024 + i), DstPort: 80, Proto: packet.TCP,
			},
			Dir: packet.Outgoing, Flags: packet.SYN, Length: 60,
		}
		frame, err := packet.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(pcap.Record{Time: p.Time, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestReplaySinglePass(t *testing.T) {
	trace := makeTrace(t, 10)
	r, err := NewReplay(bytes.NewReader(trace), 1)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(4, 2048)
	total := 0
	var last time.Duration
	for {
		n, err := r.ReadBatch(ring)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if ring[i].Time <= last {
				t.Fatalf("timestamps not increasing: %v after %v", ring[i].Time, last)
			}
			last = ring[i].Time
			if _, _, err := packet.DecodeTuple(ring[i].Data); err != nil {
				t.Fatalf("frame %d undecodable: %v", total+i, err)
			}
			if ring[i].Truncated() {
				t.Fatalf("frame %d unexpectedly truncated", total+i)
			}
		}
		total += n
	}
	if total != 10 {
		t.Errorf("replayed %d frames, want 10", total)
	}
}

// TestReplayLoops: a looped trace must keep its clock strictly monotonic
// across the rewind seam and deliver loops×frames records.
func TestReplayLoops(t *testing.T) {
	trace := makeTrace(t, 7)
	const loops = 3
	r, err := NewReplay(bytes.NewReader(trace), loops)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(5, 2048)
	total := 0
	var last time.Duration
	for {
		n, err := r.ReadBatch(ring)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if ring[i].Time <= last {
				t.Fatalf("clock went backwards at frame %d: %v after %v", total+i, ring[i].Time, last)
			}
			last = ring[i].Time
		}
		total += n
	}
	if total != 7*loops {
		t.Errorf("replayed %d frames, want %d", total, 7*loops)
	}
}

func TestReplayEmptyTraceDoesNotLoopForever(t *testing.T) {
	trace := makeTrace(t, 0)
	r, err := NewReplay(bytes.NewReader(trace), 1000)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(4, 2048)
	if n, err := r.ReadBatch(ring); n != 0 || !errors.Is(err, io.EOF) {
		t.Errorf("empty trace: n=%d err=%v, want 0, EOF", n, err)
	}
}

// TestReplayZeroAllocs pins the ring-reuse contract of the hot loop.
func TestReplayZeroAllocs(t *testing.T) {
	trace := makeTrace(t, 64)
	r, err := NewReplay(bytes.NewReader(trace), 1000000)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(16, 2048)
	// Warm the path (first batches may grow internal state).
	if _, err := r.ReadBatch(ring); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := r.ReadBatch(ring); err != nil {
			t.Fatal(err)
		}
	})
	// The rewind seam allocates a fresh pcap.Reader every 4 batches
	// (64 frames / 16 per batch); amortized that stays well under one
	// allocation per batch, and the steady-state read path contributes
	// none.
	if allocs > 1 {
		t.Errorf("ReadBatch allocates %.2f times per batch", allocs)
	}
}

func TestLoopbackRoundTrip(t *testing.T) {
	lb := NewLoopback()
	payload := []byte{1, 2, 3, 4, 5}
	for i := 0; i < 3; i++ {
		f := Frame{Time: time.Duration(i) * time.Second, Data: payload}
		if err := lb.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	// Writes after close fail.
	if err := lb.WriteFrame(Frame{Data: payload}); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v, want ErrClosed", err)
	}
	// Queued frames drain after close, then EOF.
	ring := NewRing(2, 64)
	n, err := lb.ReadBatch(ring)
	if err != nil || n != 2 {
		t.Fatalf("first batch: n=%d err=%v", n, err)
	}
	if !bytes.Equal(ring[0].Data, payload) || ring[0].Time != 0 {
		t.Errorf("frame 0 = %+v", ring[0])
	}
	if ring[1].Time != time.Second {
		t.Errorf("frame 1 time = %v", ring[1].Time)
	}
	n, err = lb.ReadBatch(ring)
	if err != nil || n != 1 {
		t.Fatalf("second batch: n=%d err=%v", n, err)
	}
	if ring[0].OrigLen != len(payload) {
		t.Errorf("OrigLen = %d, want %d", ring[0].OrigLen, len(payload))
	}
	if _, err := lb.ReadBatch(ring); !errors.Is(err, io.EOF) {
		t.Errorf("drained loopback: %v, want EOF", err)
	}
}

// TestLoopbackBlocksUntilWrite: a reader arriving before the writer must
// wake on the first frame rather than spin or miss it.
func TestLoopbackBlocksUntilWrite(t *testing.T) {
	lb := NewLoopback()
	got := make(chan Frame, 1)
	go func() {
		ring := NewRing(1, 64)
		if n, err := lb.ReadBatch(ring); err == nil && n == 1 {
			got <- Frame{Time: ring[0].Time, Data: append([]byte(nil), ring[0].Data...)}
		}
		close(got)
	}()
	want := Frame{Time: 42 * time.Millisecond, Data: []byte{9, 9, 9}}
	if err := lb.WriteFrame(want); err != nil {
		t.Fatal(err)
	}
	f, ok := <-got
	if !ok {
		t.Fatal("reader exited without a frame")
	}
	if f.Time != want.Time || !bytes.Equal(f.Data, want.Data) {
		t.Errorf("got %+v, want %+v", f, want)
	}
}

func TestPcapSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink, err := NewPcapSink(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := Frame{Time: 3 * time.Second, Data: []byte{1, 2, 3, 4}, OrigLen: 1500}
	if err := sink.WriteFrame(f); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rd.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time != f.Time || !bytes.Equal(rec.Data, f.Data) || rec.OrigLen != 1500 {
		t.Errorf("read back %+v", rec)
	}
}

// TestReplayConcurrentClose pins the Source.Close contract: Close may
// race ReadBatch from another goroutine (bfwall's signal handler does
// exactly this) and may be called more than once; the reader winds down
// with io.EOF. Run under -race, this is the regression test for the
// unsynchronized closed flag Replay originally had.
func TestReplayConcurrentClose(t *testing.T) {
	trace := makeTrace(t, 64)
	r, err := NewReplay(bytes.NewReader(trace), 1<<30) // effectively endless
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		ring := NewRing(4, 2048)
		close(started)
		for {
			if _, err := r.ReadBatch(ring); err != nil {
				done <- err
				return
			}
		}
	}()
	<-started
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("reader ended with %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not observe Close")
	}
}
