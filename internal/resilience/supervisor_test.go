package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync/atomic"
	"testing"
	"time"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/pcap"
)

// --- injectable sources for the chaos harness -------------------------

// errTransient is an unrecognized error, which Classify defaults to
// transient.
var errTransient = errors.New("injected transient glitch")

// fillFrame stamps one synthetic frame into f.
func fillFrame(f *capture.Frame, seq int) {
	f.Time = time.Duration(seq+1) * time.Millisecond
	f.Data = append(f.Data[:0], byte(seq), byte(seq>>8), byte(seq>>16), 0xbf)
	f.OrigLen = len(f.Data)
}

// flakySource delivers `total` frames but returns err on every errEvery-th
// read, and fills at most perRead frames per call (a partial-read source
// when perRead < len(frames)).
type flakySource struct {
	total    int
	perRead  int
	errEvery int
	err      error

	reads     int
	delivered int
	closed    atomic.Bool
	closes    atomic.Int64
}

func (f *flakySource) ReadBatch(frames []capture.Frame) (int, error) {
	if f.closed.Load() {
		return 0, io.EOF
	}
	f.reads++
	if f.errEvery > 0 && f.reads%f.errEvery == 0 {
		return 0, f.err
	}
	if f.delivered >= f.total {
		return 0, io.EOF
	}
	n := len(frames)
	if f.perRead > 0 && n > f.perRead {
		n = f.perRead
	}
	if rem := f.total - f.delivered; n > rem {
		n = rem
	}
	for i := 0; i < n; i++ {
		fillFrame(&frames[i], f.delivered+i)
	}
	f.delivered += n
	return n, nil
}

func (f *flakySource) Close() error {
	f.closed.Store(true)
	f.closes.Add(1)
	return nil
}

// dyingSource delivers healthy frames and then fails persistently.
type dyingSource struct {
	healthy   int
	err       error
	delivered int
	closed    atomic.Bool
}

func (d *dyingSource) ReadBatch(frames []capture.Frame) (int, error) {
	if d.closed.Load() {
		return 0, io.EOF
	}
	if d.delivered >= d.healthy {
		return 0, d.err
	}
	n := 1
	fillFrame(&frames[0], d.delivered)
	d.delivered += n
	return n, nil
}

func (d *dyingSource) Close() error { d.closed.Store(true); return nil }

// stallingSource blocks in ReadBatch until released or closed — the
// "capture loop wedged in the kernel" injection.
type stallingSource struct {
	release chan struct{}
	closed  chan struct{}
	once    atomic.Bool
}

func newStallingSource() *stallingSource {
	return &stallingSource{release: make(chan struct{}), closed: make(chan struct{})}
}

func (s *stallingSource) ReadBatch(frames []capture.Frame) (int, error) {
	select {
	case <-s.release:
		fillFrame(&frames[0], 0)
		return 1, nil
	case <-s.closed:
		return 0, io.EOF
	}
}

func (s *stallingSource) Close() error {
	if s.once.CompareAndSwap(false, true) {
		close(s.closed)
	}
	return nil
}

// instantSleep records requested backoffs without sleeping, keeping the
// chaos runs wall-clock free.
type instantSleep struct {
	mu    chan struct{} // 1-token semaphore; tests are single-reader anyway
	slept []time.Duration
}

func newInstantSleep() *instantSleep {
	return &instantSleep{mu: make(chan struct{}, 1)}
}

func (s *instantSleep) sleep(d time.Duration) {
	s.mu <- struct{}{}
	s.slept = append(s.slept, d)
	<-s.mu
}

// mustSupervisor builds a supervisor over a fixed source with instant
// sleeps.
func mustSupervisor(t *testing.T, src capture.Source, mod func(*SupervisorConfig)) (*Supervisor, *instantSleep) {
	t.Helper()
	sl := newInstantSleep()
	cfg := SupervisorConfig{
		Open:  func() (capture.Source, error) { return src, nil },
		Sleep: sl.sleep,
	}
	if mod != nil {
		mod(&cfg)
	}
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sup, sl
}

// drain reads the supervisor to EOF, returning frames delivered.
func drain(t *testing.T, src capture.Source) int {
	t.Helper()
	ring := capture.NewRing(8, 64)
	total := 0
	for {
		n, err := src.ReadBatch(ring)
		total += n
		if errors.Is(err, io.EOF) {
			return total
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
	}
}

// --- classification ---------------------------------------------------

// TestClassify pins the transient/fatal triage the supervisor applies,
// including errors as they actually surface from capture.Replay
// (wrapped with %w).
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{io.EOF, ClassEOF},
		{capture.ErrClosed, ClassEOF},
		{fmt.Errorf("capture: %w", io.ErrUnexpectedEOF), ClassTransient},
		{fmt.Errorf("capture: %w", pcap.ErrSnapLen), ClassTransient},
		{fmt.Errorf("capture: %w", pcap.ErrBadMagic), ClassFatal},
		{fmt.Errorf("capture: %w", pcap.ErrBadVersion), ClassFatal},
		{fs.ErrNotExist, ClassFatal},
		{fs.ErrPermission, ClassFatal},
		{errTransient, ClassTransient}, // unknown defaults to transient
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestClassifyRealReplayErrors drives a truncated and a corrupt pcap
// through capture.Replay and pins what the supervisor sees: truncation
// mid-record must classify transient (survivable), structural garbage at
// open must classify fatal.
func TestClassifyRealReplayErrors(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := packet.Encode(packet.Packet{
		Time: time.Millisecond,
		Tuple: packet.Tuple{
			Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 1),
			SrcPort: 1024, DstPort: 80, Proto: packet.TCP,
		},
		Dir: packet.Outgoing, Length: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.WriteRecord(pcap.Record{Time: time.Duration(i+1) * time.Millisecond, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	trace := buf.Bytes()

	// Truncate the last record mid-payload.
	truncated := trace[:len(trace)-10]
	r, err := capture.NewReplay(bytes.NewReader(truncated), 1)
	if err != nil {
		t.Fatal(err)
	}
	ring := capture.NewRing(8, 2048)
	var readErr error
	got := 0
	for readErr == nil {
		var n int
		n, readErr = r.ReadBatch(ring)
		got += n
	}
	if got != 2 {
		t.Errorf("truncated trace delivered %d frames, want the 2 intact ones", got)
	}
	if Classify(readErr) != ClassTransient {
		t.Errorf("mid-stream truncation %v classified %v, want transient", readErr, Classify(readErr))
	}

	// Garbage at open: not a pcap at all.
	if _, err := capture.NewReplay(bytes.NewReader([]byte("this is definitely not a pcap capture file")), 1); err == nil {
		t.Error("garbage header accepted")
	} else if Classify(err) != ClassFatal {
		t.Errorf("bad magic %v classified %v, want fatal", err, Classify(err))
	}
}

// --- supervisor behavior ----------------------------------------------

func TestSupervisorPassthrough(t *testing.T) {
	src := &flakySource{total: 100, perRead: 7}
	sup, _ := mustSupervisor(t, src, nil)
	if got := drain(t, sup); got != 100 {
		t.Errorf("delivered %d frames, want 100", got)
	}
	st := sup.Stats()
	if st.Frames != 100 || st.TransientErrors != 0 || st.Reopens != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSupervisorReopensPersistentFailure: a source that dies for good
// must be replaced through the factory, and the stream continues on the
// replacement.
func TestSupervisorReopensPersistentFailure(t *testing.T) {
	opens := 0
	sl := newInstantSleep()
	sup, err := NewSupervisor(SupervisorConfig{
		Open: func() (capture.Source, error) {
			opens++
			if opens == 1 {
				return &dyingSource{healthy: 5, err: errTransient}, nil
			}
			return &flakySource{total: 10}, nil
		},
		ReopenAfter: 2,
		Sleep:       sl.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, sup); got != 15 {
		t.Errorf("delivered %d frames, want 5 + 10 across the reopen", got)
	}
	st := sup.Stats()
	if st.Reopens != 1 {
		t.Errorf("reopens = %d, want 1", st.Reopens)
	}
	if st.TransientErrors != 2 {
		t.Errorf("transient errors = %d, want 2 (ReopenAfter)", st.TransientErrors)
	}
	if opens != 2 {
		t.Errorf("factory called %d times, want 2", opens)
	}
}

// TestSupervisorFactoryFailuresBounded: a factory that cannot produce a
// working source must exhaust the budget, not loop forever.
func TestSupervisorFactoryFailuresBounded(t *testing.T) {
	opens := 0
	sl := newInstantSleep()
	sup, err := NewSupervisor(SupervisorConfig{
		Open:                   func() (capture.Source, error) { opens++; return nil, errTransient },
		MaxConsecutiveFailures: 5,
		Sleep:                  sl.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := sup.ReadBatch(capture.NewRing(1, 64))
	if !errors.Is(rerr, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", rerr)
	}
	if opens != 5 {
		t.Errorf("factory called %d times, want 5", opens)
	}
	if st := sup.Stats(); st.ReopenFailures != 5 {
		t.Errorf("reopen failures = %d, want 5", st.ReopenFailures)
	}
}

// TestSupervisorFatalOpenError: a fatal factory error (missing file)
// surfaces immediately, no retry loop.
func TestSupervisorFatalOpenError(t *testing.T) {
	opens := 0
	sup, err := NewSupervisor(SupervisorConfig{
		Open: func() (capture.Source, error) { opens++; return nil, fs.ErrNotExist },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := sup.ReadBatch(capture.NewRing(1, 64))
	if rerr == nil || !errors.Is(rerr, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", rerr)
	}
	if opens != 1 {
		t.Errorf("factory called %d times, want 1", opens)
	}
}

// TestSupervisorFatalReadError: fatal read errors end the stream with
// the underlying source closed.
func TestSupervisorFatalReadError(t *testing.T) {
	src := &dyingSource{healthy: 3, err: fmt.Errorf("capture: %w", pcap.ErrBadMagic)}
	sup, _ := mustSupervisor(t, src, nil)
	ring := capture.NewRing(8, 64)
	got := 0
	var rerr error
	for rerr == nil {
		var n int
		n, rerr = sup.ReadBatch(ring)
		got += n
	}
	if got != 3 {
		t.Errorf("delivered %d frames before the fatal error, want 3", got)
	}
	if !errors.Is(rerr, pcap.ErrBadMagic) {
		t.Errorf("err = %v, want wrapped ErrBadMagic", rerr)
	}
	if !src.closed.Load() {
		t.Error("underlying source not closed after fatal error")
	}
	if st := sup.Stats(); st.FatalErrors != 1 {
		t.Errorf("fatal errors = %d, want 1", st.FatalErrors)
	}
}

// TestSupervisorExhaustion: a persistently failing source with a factory
// that keeps handing the same broken source back must give up after the
// budget, with the backoff ladder visibly exponential and capped.
func TestSupervisorExhaustion(t *testing.T) {
	sl := newInstantSleep()
	sup, err := NewSupervisor(SupervisorConfig{
		Open:                   func() (capture.Source, error) { return &dyingSource{err: errTransient}, nil },
		MaxConsecutiveFailures: 10,
		ReopenAfter:            3,
		BaseBackoff:            time.Millisecond,
		MaxBackoff:             8 * time.Millisecond,
		Jitter:                 -1, // exact ladder
		Sleep:                  sl.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := sup.ReadBatch(capture.NewRing(1, 64))
	if !errors.Is(rerr, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", rerr)
	}
	if len(sl.slept) != 9 {
		t.Fatalf("backoffs = %d, want 9 (10 failures, no sleep after the last)", len(sl.slept))
	}
	want := []time.Duration{1, 2, 4, 8, 8, 8, 8, 8, 8} // ms, doubling then capped
	for i, d := range sl.slept {
		if d != want[i]*time.Millisecond {
			t.Errorf("backoff %d = %v, want %v", i, d, want[i]*time.Millisecond)
		}
	}
}

// TestSupervisorCloseDuringRead: Close from another goroutine unblocks a
// stalled source read and yields io.EOF.
func TestSupervisorCloseDuringRead(t *testing.T) {
	src := newStallingSource()
	sup, _ := mustSupervisor(t, src, nil)
	done := make(chan error, 1)
	go func() {
		_, err := sup.ReadBatch(capture.NewRing(1, 64))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader park in the source
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Errorf("read after Close = %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not observe Close")
	}
}

// TestSupervisorCloseDuringBackoff: the default interruptible sleep must
// wake on Close instead of serving out a long backoff.
func TestSupervisorCloseDuringBackoff(t *testing.T) {
	sup, err := NewSupervisor(SupervisorConfig{
		Open:        func() (capture.Source, error) { return &dyingSource{err: errTransient}, nil },
		BaseBackoff: time.Hour, // would hang without interruption
		MaxBackoff:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sup.ReadBatch(capture.NewRing(1, 64))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // reader reaches the backoff sleep
	sup.Close()
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Errorf("read = %v, want io.EOF after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the backoff sleep")
	}
}

// TestSupervisorZeroAllocsSteadyState pins the passthrough contract: a
// healthy supervised read adds no allocations over the raw source.
func TestSupervisorZeroAllocsSteadyState(t *testing.T) {
	src := &flakySource{total: 1 << 30}
	sup, _ := mustSupervisor(t, src, nil)
	ring := capture.NewRing(16, 64)
	if _, err := sup.ReadBatch(ring); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sup.ReadBatch(ring); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("supervised ReadBatch allocates %.2f times per call", allocs)
	}
}
