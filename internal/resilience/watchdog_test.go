package resilience

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable watchdog clock for deterministic stall and
// clock-jump tests.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) fn() func() time.Duration {
	return func() time.Duration { return time.Duration(c.now.Load()) }
}

func (c *fakeClock) advance(d time.Duration) { c.now.Add(int64(d)) }
func (c *fakeClock) set(d time.Duration)     { c.now.Store(int64(d)) }

func TestWatchdogBeatAndStall(t *testing.T) {
	clk := &fakeClock{}
	wd := NewWatchdog(clk.fn())
	p := wd.Heartbeat("pump", 100*time.Millisecond)

	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("fresh probe already stalled: %v", stalls)
	}
	clk.advance(90 * time.Millisecond)
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("stalled before the threshold: %v", stalls)
	}
	clk.advance(20 * time.Millisecond) // age 110ms > 100ms
	stalls := wd.Check()
	if len(stalls) != 1 || stalls[0].Name != "pump" {
		t.Fatalf("stalls = %v, want pump flagged", stalls)
	}
	if stalls[0].Age != 110*time.Millisecond {
		t.Errorf("stall age = %v, want 110ms", stalls[0].Age)
	}

	p.Beat()
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("beat did not clear the stall: %v", stalls)
	}
	if got := p.beats.Load(); got != 1 {
		t.Errorf("beats = %d, want 1", got)
	}
}

// TestWatchdogIdleExempt: a loop parked on a blocking read is not a
// stall; resuming work restarts the window.
func TestWatchdogIdleExempt(t *testing.T) {
	clk := &fakeClock{}
	wd := NewWatchdog(clk.fn())
	p := wd.Heartbeat("capture", 50*time.Millisecond)

	p.SetIdle(true)
	clk.advance(time.Hour)
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("idle probe flagged: %v", stalls)
	}

	// Work resumes: the window restarts now, not an hour ago.
	p.SetIdle(false)
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("probe stalled immediately after leaving idle: %v", stalls)
	}
	clk.advance(60 * time.Millisecond)
	if stalls := wd.Check(); len(stalls) != 1 {
		t.Fatalf("probe not flagged after stalling post-idle: %v", stalls)
	}
}

// TestWatchdogProgressProbe: a value that advances is alive; a frozen
// value stalls.
func TestWatchdogProgressProbe(t *testing.T) {
	clk := &fakeClock{}
	wd := NewWatchdog(clk.fn())
	var rotations atomic.Uint64
	wd.Progress("rotation", 100*time.Millisecond, rotations.Load)

	clk.advance(90 * time.Millisecond)
	rotations.Add(1)
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("advancing value flagged: %v", stalls)
	}
	clk.advance(90 * time.Millisecond) // 90ms since the advance was seen
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("stalled before threshold: %v", stalls)
	}
	clk.advance(20 * time.Millisecond) // 110ms, value frozen
	if stalls := wd.Check(); len(stalls) != 1 {
		t.Fatalf("frozen value not flagged: %v", stalls)
	}
}

// TestWatchdogClockJump: a clock that steps backwards (chaos injection:
// NTP step, resumed VM) rebases the probe instead of reporting a bogus
// age, and a forward jump past the threshold still flags honestly.
func TestWatchdogClockJump(t *testing.T) {
	clk := &fakeClock{}
	clk.set(time.Hour)
	wd := NewWatchdog(clk.fn())
	wd.Heartbeat("pump", 100*time.Millisecond)

	// Backwards jump: age would be negative; probe must rebase, not flag.
	clk.set(0)
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("backwards clock jump produced stalls: %v", stalls)
	}
	// After the rebase the window counts from the new clock position.
	clk.advance(90 * time.Millisecond)
	if stalls := wd.Check(); len(stalls) != 0 {
		t.Fatalf("stalled inside the rebased window: %v", stalls)
	}
	clk.advance(20 * time.Millisecond)
	if stalls := wd.Check(); len(stalls) != 1 {
		t.Fatalf("rebased probe never stalls: %v", stalls)
	}
}

func TestWatchdogStatus(t *testing.T) {
	clk := &fakeClock{}
	wd := NewWatchdog(clk.fn())
	p1 := wd.Heartbeat("a", 50*time.Millisecond)
	p2 := wd.Heartbeat("b", 50*time.Millisecond)
	p1.Beat()
	p2.SetIdle(true)
	clk.advance(100 * time.Millisecond)
	p1.Beat()

	status := wd.Status()
	if len(status) != 2 {
		t.Fatalf("status has %d probes, want 2", len(status))
	}
	byName := map[string]ProbeStatus{}
	for _, st := range status {
		byName[st.Name] = st
	}
	if a := byName["a"]; a.Beats != 2 || a.Stalled || a.Idle || a.Age != 0 {
		t.Errorf("probe a status = %+v", a)
	}
	if b := byName["b"]; !b.Idle || b.Stalled {
		t.Errorf("probe b status = %+v", b)
	}
	if p1.Name() != "a" {
		t.Errorf("Name() = %q", p1.Name())
	}
}

func TestHealthLifecycle(t *testing.T) {
	clk := &fakeClock{}
	wd := NewWatchdog(clk.fn())
	wd.Heartbeat("pump", 100*time.Millisecond)
	h := NewHealth(wd)

	// Starting: live (nothing stalled) but not ready.
	if ok, _ := h.Live(); !ok {
		t.Error("starting process not live")
	}
	if ok, detail := h.Ready(); ok || detail != "starting" {
		t.Errorf("Ready during startup = %v, %q", ok, detail)
	}

	h.SetReady()
	if ok, _ := h.Ready(); !ok {
		t.Error("not ready after SetReady")
	}
	if h.State() != StateReady {
		t.Errorf("state = %v", h.State())
	}

	// A stall kills both liveness and readiness.
	clk.advance(200 * time.Millisecond)
	if ok, detail := h.Live(); ok || !strings.Contains(detail, "pump stalled") {
		t.Errorf("Live with stalled pump = %v, %q", ok, detail)
	}
	if ok, _ := h.Ready(); ok {
		t.Error("ready with a stalled probe")
	}

	// Draining: no longer ready, but still live — do not kill harder.
	clk.set(0)
	wd.Check() // rebase after the jump back
	h.SetDraining()
	if ok, _ := h.Live(); !ok {
		t.Error("draining process reported dead")
	}
	if ok, detail := h.Ready(); ok || detail != "draining" {
		t.Errorf("Ready while draining = %v, %q", ok, detail)
	}
	if h.State().String() != "draining" {
		t.Errorf("state string = %q", h.State())
	}
}

// TestHealthNilWatchdog: a Health with no watchdog answers from the
// state machine alone.
func TestHealthNilWatchdog(t *testing.T) {
	h := NewHealth(nil)
	if ok, _ := h.Live(); !ok {
		t.Error("nil-watchdog health not live")
	}
	h.SetReady()
	if ok, _ := h.Ready(); !ok {
		t.Error("nil-watchdog health not ready")
	}
}
