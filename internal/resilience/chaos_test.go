package resilience

// The chaos harness: injected source failures, stalls, partial reads,
// clock jumps and slow filters driven through the full supervised stack
// (Supervisor feeding Buffer feeding a consumer), asserting the daemon
// contract — survive transient chaos with bounded backoff, shed
// deterministically under overload, flag stalls, and leak nothing.

import (
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"bitmapfilter/internal/capture"
)

// noLeakedGoroutines records the goroutine count and verifies at cleanup
// that the test returned to it (with a grace period for exits in
// flight).
func noLeakedGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// TestChaosSurvivesThousandTransientFailures is the headline injection:
// a source that fails on every other read, 1000 failures across the
// run, supervised and buffered. Every frame must arrive, every failure
// must be counted, every backoff must stay within the configured cap,
// and no goroutine may outlive the stack.
func TestChaosSurvivesThousandTransientFailures(t *testing.T) {
	noLeakedGoroutines(t)

	const (
		wantFrames   = 2000
		wantFailures = 1000
	)
	src := &flakySource{total: wantFrames, perRead: 2, errEvery: 2, err: errTransient}
	sl := newInstantSleep()
	sup, err := NewSupervisor(SupervisorConfig{
		Open:        func() (capture.Source, error) { return src, nil },
		BaseBackoff: time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Sleep:       sl.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(sup, BufferConfig{Capacity: 4096, SnapLen: 64})

	got := drain(t, buf)
	if got != wantFrames {
		t.Errorf("delivered %d frames through the chaos, want %d", got, wantFrames)
	}

	st := sup.Stats()
	if st.TransientErrors != wantFailures {
		t.Errorf("transient errors = %d, want %d", st.TransientErrors, wantFailures)
	}
	if st.Frames != wantFrames {
		t.Errorf("supervisor frames = %d, want %d", st.Frames, wantFrames)
	}
	if st.Reopens != 0 {
		t.Errorf("reopens = %d, want 0 (failures never consecutive)", st.Reopens)
	}
	if st.Backoffs != wantFailures {
		t.Errorf("backoffs = %d, want %d", st.Backoffs, wantFailures)
	}

	// Bounded backoff: every sleep within the cap, and — because a
	// success always intervened — every sleep from the bottom of the
	// ladder (base ± jitter).
	if len(sl.slept) != wantFailures {
		t.Fatalf("recorded %d backoff sleeps, want %d", len(sl.slept), wantFailures)
	}
	maxAllowed := time.Duration(float64(time.Millisecond) * (1 + DefaultJitter))
	for i, d := range sl.slept {
		if d <= 0 || d > maxAllowed {
			t.Fatalf("backoff %d = %v, want (0, %v]", i, d, maxAllowed)
		}
	}
	if st.BackoffTotal > time.Duration(wantFailures)*maxAllowed {
		t.Errorf("backoff total %v exceeds the bound", st.BackoffTotal)
	}

	bst := buf.Stats()
	if bst.Accepted+bst.Shed != wantFrames {
		t.Errorf("buffer accounted %d frames, want %d", bst.Accepted+bst.Shed, wantFrames)
	}

	if err := buf.Close(); err != nil {
		t.Fatal(err)
	}
	sup.Close()
}

// TestChaosReopenStorm: sources that die for good every few frames, a
// factory that keeps replacing them. The stream must continue across
// hundreds of reopens with the budget reset by each successful read.
func TestChaosReopenStorm(t *testing.T) {
	noLeakedGoroutines(t)

	const (
		perSource = 4
		sources   = 250
	)
	opens := 0
	sl := newInstantSleep()
	sup, err := NewSupervisor(SupervisorConfig{
		Open: func() (capture.Source, error) {
			opens++
			if opens > sources {
				return &flakySource{total: 0}, nil // clean EOF ends the run
			}
			return &dyingSource{healthy: perSource, err: errTransient}, nil
		},
		ReopenAfter: 1, // reopen on the first failure of each source
		Sleep:       sl.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, sup)
	if want := perSource * sources; got != want {
		t.Errorf("delivered %d frames across the reopen storm, want %d", got, want)
	}
	st := sup.Stats()
	if st.Reopens != sources {
		t.Errorf("reopens = %d, want %d", st.Reopens, sources)
	}
	if st.TransientErrors != sources {
		t.Errorf("transient errors = %d, want %d", st.TransientErrors, sources)
	}
}

// TestChaosSlowFilterOverload drives a fast supervised source against a
// consumer that does not keep up, end to end: the buffer must shed
// exactly the overflow, count it, and deliver the rest intact.
func TestChaosSlowFilterOverload(t *testing.T) {
	noLeakedGoroutines(t)

	const total = 5000
	src := &flakySource{total: total, perRead: 32, errEvery: 7, err: errTransient}
	sl := newInstantSleep()
	sup, err := NewSupervisor(SupervisorConfig{
		Open:  func() (capture.Source, error) { return src, nil },
		Sleep: sl.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(sup, BufferConfig{Capacity: 200, SnapLen: 64})

	// The slow filter: refuses to read until the whole burst has been
	// pushed or shed, then drains.
	for {
		st := buf.Stats()
		if st.Accepted+st.Shed == total {
			break
		}
		runtime.Gosched()
	}
	st := buf.Stats()
	if st.Accepted != 180 { // high watermark of 200
		t.Errorf("accepted %d frames, want 180", st.Accepted)
	}
	if st.Shed != total-180 {
		t.Errorf("shed %d frames, want %d", st.Shed, total-180)
	}
	if got := drain(t, buf); got != int(st.Accepted) {
		t.Errorf("drained %d frames, want %d", got, st.Accepted)
	}
	buf.Close()
}

// TestChaosStallingSourceFlagsWatchdog wires the watchdog into the
// supervised stack and injects a wedge: the probe must flag, health must
// go not-live, and releasing the wedge must restore both.
func TestChaosStallingSourceFlagsWatchdog(t *testing.T) {
	noLeakedGoroutines(t)

	src := newStallingSource()
	clk := &fakeClock{}
	wd := NewWatchdog(clk.fn())
	probe := wd.Heartbeat("intake", 100*time.Millisecond)
	h := NewHealth(wd)

	sup, err := NewSupervisor(SupervisorConfig{
		Open: func() (capture.Source, error) { return src, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(sup, BufferConfig{Capacity: 16, SnapLen: 64, Heartbeat: probe.Beat})
	h.SetReady()

	// The intake is parked inside the stalled source; no beats arrive.
	clk.advance(time.Second)
	if ok, detail := h.Live(); ok {
		t.Error("live while the intake is wedged")
	} else if detail == "" {
		t.Error("stall detail empty")
	}
	if ok, _ := h.Ready(); ok {
		t.Error("ready while the intake is wedged")
	}

	// Release the wedge: a frame flows, the intake beats, health
	// recovers.
	close(src.release)
	ring := capture.NewRing(1, 64)
	if n, err := buf.ReadBatch(ring); n != 1 || err != nil {
		t.Fatalf("post-release read = %d, %v", n, err)
	}
	if ok, detail := h.Live(); !ok {
		t.Errorf("not live after the wedge cleared: %s", detail)
	}

	buf.Close()
	drain(t, buf) // consume the EOF so the intake goroutine exits
	sup.Close()
}

// TestChaosPartialReads: a source that trickles one frame per call with
// interleaved failures must still deliver everything, in order.
func TestChaosPartialReads(t *testing.T) {
	noLeakedGoroutines(t)

	const total = 300
	src := &flakySource{total: total, perRead: 1, errEvery: 3, err: errTransient}
	sl := newInstantSleep()
	sup, err := NewSupervisor(SupervisorConfig{
		Open:  func() (capture.Source, error) { return src, nil },
		Sleep: sl.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(sup, BufferConfig{Capacity: 512, SnapLen: 64})

	ring := capture.NewRing(8, 64)
	seq := 0
	for {
		n, err := buf.ReadBatch(ring)
		for i := 0; i < n; i++ {
			want := byte(seq)
			if ring[i].Data[0] != want {
				t.Fatalf("frame %d out of order: data[0] = %d", seq, ring[i].Data[0])
			}
			seq++
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if seq != total {
		t.Errorf("delivered %d frames, want %d", seq, total)
	}
	buf.Close()
}
