package resilience

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// State is the daemon's lifecycle position, driving readiness.
type State uint8

const (
	// StateStarting: the process is up but not yet serving traffic
	// (restoring a checkpoint, opening the source).
	StateStarting State = iota
	// StateReady: the data plane is flowing; load balancers may send
	// work.
	StateReady
	// StateDraining: shutdown has begun — intake is stopping, the final
	// checkpoint is being taken. The process is still *live* (do not
	// kill it harder), but no longer *ready* (stop routing to it).
	StateDraining
)

// String names the state for logs and metrics.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Health combines the watchdog's stall evidence with the daemon's
// lifecycle state into the two orchestrator questions:
//
//   - Live   — is the process making progress at all, or should it be
//     restarted? False only on a stalled probe: a wedged batch loop, a
//     checkpointer that stopped checkpointing.
//   - Ready  — should new traffic be routed here? Requires StateReady
//     and liveness; flips false the moment draining starts so the
//     orchestrator stops routing before intake stops.
type Health struct {
	wd    *Watchdog
	state atomic.Uint32
}

// NewHealth builds a Health view over wd (which may be nil: then only
// the state machine drives the answers).
func NewHealth(wd *Watchdog) *Health {
	return &Health{wd: wd}
}

// Watchdog returns the watchdog backing this health view (nil when none
// was attached) so metrics exporters can render per-probe series.
func (h *Health) Watchdog() *Watchdog { return h.wd }

// SetState moves the lifecycle state machine.
func (h *Health) SetState(s State) { h.state.Store(uint32(s)) }

// SetReady is shorthand for SetState(StateReady).
func (h *Health) SetReady() { h.SetState(StateReady) }

// SetDraining is shorthand for SetState(StateDraining).
func (h *Health) SetDraining() { h.SetState(StateDraining) }

// State returns the current lifecycle state.
func (h *Health) State() State { return State(h.state.Load()) }

// Live answers the liveness probe. The detail string is empty when
// healthy and names each stalled probe otherwise.
func (h *Health) Live() (bool, string) {
	if h.wd == nil {
		return true, ""
	}
	stalls := h.wd.Check()
	if len(stalls) == 0 {
		return true, ""
	}
	return false, describeStalls(stalls)
}

// Ready answers the readiness probe: StateReady and no stalls.
func (h *Health) Ready() (bool, string) {
	if s := h.State(); s != StateReady {
		return false, s.String()
	}
	return h.Live()
}

// describeStalls renders stalls for probe bodies and logs.
func describeStalls(stalls []Stall) string {
	var b strings.Builder
	for i, st := range stalls {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s stalled for %v", st.Name, st.Age.Round(timeRound))
	}
	return b.String()
}

// timeRound keeps stall ages human-sized in probe bodies.
const timeRound = 1e6 // 1ms in time.Duration units
