package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStallAfter is the stall threshold NewWatchdog applies when a
// probe is registered with zero.
const DefaultStallAfter = 30 * time.Second

// Watchdog collects liveness probes from the daemon's loops — capture
// intake, batch processing, the checkpointer — and flags the ones that
// stopped making progress. It deliberately does not kill anything
// itself: it is the evidence source for Health (and thence /healthz),
// for metrics, and for operator logs.
//
// The clock is injectable and monotonic by construction: the default
// measures elapsed time since the watchdog was built (Go's monotonic
// reading), so wall-clock jumps — NTP steps, VM pauses resumed with a
// new wall time — cannot spuriously stall or un-stall probes, and a
// probe observed with a clock that went backwards is rebased instead of
// reported with a negative or absurd age.
type Watchdog struct {
	now func() time.Duration

	mu     sync.Mutex
	probes []*Probe //bf:guardedby mu
}

// NewWatchdog builds a watchdog on the given clock; nil uses the
// monotonic elapsed-time default.
func NewWatchdog(now func() time.Duration) *Watchdog {
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	return &Watchdog{now: now}
}

// Probe is one supervised loop. Loops call Beat when they complete an
// iteration and SetIdle(true) before parking on a blocking read: a loop
// wedged in our code fails to beat, while a loop legitimately parked in
// the kernel waiting for a quiet wire is explicitly exempt — an idle
// link is not a stall.
type Probe struct {
	name       string
	stallAfter time.Duration
	wd         *Watchdog

	last  atomic.Int64 // last beat on the watchdog clock, ns
	beats atomic.Uint64
	idle  atomic.Bool

	// progress, when set, makes this a progress probe: Check treats an
	// advance of the observed value as a beat, so loops that cannot
	// call Beat themselves (a rotation counter inside the filter) are
	// still supervised.
	progress func() uint64
	lastVal  atomic.Uint64
}

// register wires a probe into the watchdog.
func (w *Watchdog) register(p *Probe) *Probe {
	if p.stallAfter <= 0 {
		p.stallAfter = DefaultStallAfter
	}
	p.wd = w
	p.last.Store(int64(w.now()))
	w.mu.Lock()
	w.probes = append(w.probes, p)
	w.mu.Unlock()
	return p
}

// Heartbeat registers a beat-driven probe: the loop must call Beat at
// least every stallAfter (or declare itself idle) or it is flagged.
func (w *Watchdog) Heartbeat(name string, stallAfter time.Duration) *Probe {
	return w.register(&Probe{name: name, stallAfter: stallAfter})
}

// Progress registers a value-driven probe: value() must advance at
// least every stallAfter. Used for counters owned by other subsystems,
// e.g. "rotations keep happening".
func (w *Watchdog) Progress(name string, stallAfter time.Duration, value func() uint64) *Probe {
	p := &Probe{name: name, stallAfter: stallAfter, progress: value}
	if value != nil {
		p.lastVal.Store(value())
	}
	return w.register(p)
}

// Beat records one loop iteration.
func (p *Probe) Beat() {
	p.beats.Add(1)
	p.last.Store(int64(p.wd.now()))
}

// SetIdle marks the probe as parked on a blocking call (true) or
// actively working (false). Leaving idle also counts as a beat, so the
// stall window restarts from the moment work resumed.
func (p *Probe) SetIdle(idle bool) {
	if !idle && p.idle.Load() {
		p.last.Store(int64(p.wd.now()))
	}
	p.idle.Store(idle)
}

// Name returns the probe's registered name.
func (p *Probe) Name() string { return p.name }

// age returns time since the last beat on the watchdog clock, rebasing
// if the clock went backwards (an injected or stepped clock).
func (p *Probe) age(now time.Duration) time.Duration {
	last := time.Duration(p.last.Load())
	if now < last {
		p.last.Store(int64(now))
		return 0
	}
	return now - last
}

// Stall is one flagged probe.
type Stall struct {
	// Name identifies the probe.
	Name string
	// Age is how long ago it last made progress.
	Age time.Duration
}

// ProbeStatus is one probe's state for metrics export.
type ProbeStatus struct {
	Name    string
	Beats   uint64
	Age     time.Duration
	Idle    bool
	Stalled bool
}

// Check evaluates every probe now and returns the stalled ones (nil
// when all healthy). Progress probes observe their value first: an
// advance is a beat.
func (w *Watchdog) Check() []Stall {
	w.mu.Lock()
	probes := w.probes
	w.mu.Unlock()
	now := w.now()
	var stalls []Stall
	for _, p := range probes {
		if st := w.check(p, now); st != nil {
			stalls = append(stalls, *st)
		}
	}
	return stalls
}

// check evaluates one probe.
func (w *Watchdog) check(p *Probe, now time.Duration) *Stall {
	if p.progress != nil {
		if v := p.progress(); v != p.lastVal.Load() {
			p.lastVal.Store(v)
			p.last.Store(int64(now))
		}
	}
	if p.idle.Load() {
		return nil
	}
	if age := p.age(now); age > p.stallAfter {
		return &Stall{Name: p.name, Age: age}
	}
	return nil
}

// Status reports every probe's state (for /metrics and /stats).
func (w *Watchdog) Status() []ProbeStatus {
	w.mu.Lock()
	probes := w.probes
	w.mu.Unlock()
	now := w.now()
	out := make([]ProbeStatus, 0, len(probes))
	for _, p := range probes {
		stalled := w.check(p, now) != nil
		out = append(out, ProbeStatus{
			Name:    p.name,
			Beats:   p.beats.Load(),
			Age:     p.age(now),
			Idle:    p.idle.Load(),
			Stalled: stalled,
		})
	}
	return out
}
