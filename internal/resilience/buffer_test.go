package resilience

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"bitmapfilter/internal/capture"
)

// newDetachedBuffer builds a Buffer with no intake goroutine so tests
// can drive push/ReadBatch deterministically from one goroutine.
func newDetachedBuffer(capacity int, policy OverloadPolicy) *Buffer {
	b := &Buffer{
		cfg: BufferConfig{
			Capacity:      capacity,
			SnapLen:       64,
			ReadBatch:     8,
			HighWatermark: DefaultHighWatermark,
			LowWatermark:  DefaultLowWatermark,
			Policy:        policy,
		},
		slots: capture.NewRing(capacity, 64),
	}
	// No intake goroutine to join: pre-close the channel so Close does
	// not block.
	b.intakeDone = make(chan struct{})
	close(b.intakeDone)
	b.cond = sync.NewCond(&b.mu)
	return b
}

// burst builds n synthetic frames.
func burst(n int) []capture.Frame {
	frames := capture.NewRing(n, 64)
	for i := range frames {
		fillFrame(&frames[i], i)
	}
	return frames
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("drop"); err != nil || p != PolicyDrop {
		t.Errorf("ParsePolicy(drop) = %v, %v", p, err)
	}
	if p, err := ParsePolicy("admit"); err != nil || p != PolicyAdmit {
		t.Errorf("ParsePolicy(admit) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("panic"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	if PolicyDrop.String() != "drop" || PolicyAdmit.String() != "admit" {
		t.Error("policy String round-trip broken")
	}
	var zero OverloadPolicy
	if zero != PolicyDrop {
		t.Error("zero value must be the fail-closed policy")
	}
}

// TestBufferPassthrough: frames flow through the queue in order and the
// terminal EOF arrives only after the queue drains.
func TestBufferPassthrough(t *testing.T) {
	src := &flakySource{total: 500, perRead: 7}
	b := NewBuffer(src, BufferConfig{Capacity: 1024, SnapLen: 64})
	got := drain(t, b)
	if got != 500 {
		t.Errorf("delivered %d frames, want 500", got)
	}
	st := b.Stats()
	if st.Accepted != 500 || st.Shed != 0 || st.Depth != 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferOrderPreserved: the circular queue must not reorder or
// corrupt frames across wrap-around.
func TestBufferOrderPreserved(t *testing.T) {
	b := newDetachedBuffer(16, PolicyDrop)
	frames := burst(10)
	ring := capture.NewRing(4, 64)
	next := byte(0)
	// Push and pop in a pattern that wraps the ring several times.
	for round := 0; round < 7; round++ {
		for i := range frames {
			fillFrame(&frames[i], round*10+i)
		}
		b.push(frames)
		for popped := 0; popped < 10; {
			n, err := b.ReadBatch(ring)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if ring[i].Data[0] != next {
					t.Fatalf("frame out of order: got seq %d, want %d", ring[i].Data[0], next)
				}
				next++
			}
			popped += n
		}
	}
}

// TestBufferWatermarkHysteresis pins the exact shed window: shedding
// begins at the high watermark, persists until the queue drains to the
// low watermark, and restarts only at the high watermark again.
func TestBufferWatermarkHysteresis(t *testing.T) {
	b := newDetachedBuffer(10, PolicyDrop) // high=9, low=7
	b.push(burst(20))
	st := b.Stats()
	if st.Accepted != 9 || st.Shed != 11 || st.ShedEvents != 1 || !st.Shedding {
		t.Fatalf("after burst: %+v, want 9 accepted / 11 shed / shedding", st)
	}

	// Pop two: depth 7 == low watermark, shedding clears.
	ring := capture.NewRing(2, 64)
	if n, err := b.ReadBatch(ring); err != nil || n != 2 {
		t.Fatalf("pop = %d, %v", n, err)
	}
	if st := b.Stats(); st.Shedding {
		t.Fatalf("still shedding at depth %d (low watermark is 7)", st.Depth)
	}

	// Refill: two more fit (depth 7→9), then shedding resumes.
	b.push(burst(5))
	st = b.Stats()
	if st.Accepted != 11 || st.Shed != 14 || st.ShedEvents != 2 {
		t.Fatalf("after refill: %+v, want 11 accepted / 14 shed / 2 events", st)
	}
	if st.MaxDepth != 9 {
		t.Errorf("max depth = %d, want 9", st.MaxDepth)
	}
}

// TestBufferShedsDeterministically is the slow-filter chaos injection: a
// consumer that reads nothing while a 1000-frame burst arrives. Exactly
// highDepth frames are judged, every other frame is counted shed, and
// accepted+shed equals the injected load.
func TestBufferShedsDeterministically(t *testing.T) {
	const total = 1000
	src := &flakySource{total: total, perRead: 16}
	b := NewBuffer(src, BufferConfig{Capacity: 100, SnapLen: 64})

	// Wait (without reading) until the intake has pushed the whole burst.
	for {
		st := b.Stats()
		if st.Accepted+st.Shed == total {
			break
		}
		runtime.Gosched()
	}
	st := b.Stats()
	if st.Accepted != 90 || st.Shed != 910 || st.ShedEvents != 1 {
		t.Fatalf("stats = %+v, want 90 accepted / 910 shed / 1 event", st)
	}

	// The slow filter finally reads: it gets exactly the accepted frames.
	got := drain(t, b)
	if got != 90 {
		t.Errorf("drained %d frames, want 90", got)
	}
	if st := b.Stats(); st.Shedding {
		t.Error("still shedding after drain")
	}
}

// TestBufferCloseDrains: Close stops intake but queued frames are still
// delivered before EOF — the graceful-drain order.
func TestBufferCloseDrains(t *testing.T) {
	lb := capture.NewLoopback()
	for i := 0; i < 5; i++ {
		f := capture.Frame{}
		fillFrame(&f, i)
		if err := lb.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	b := NewBuffer(lb, BufferConfig{Capacity: 64, SnapLen: 64})
	// Wait for the intake to move the queued frames over.
	for b.Stats().Accepted < 5 {
		runtime.Gosched()
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, b); got != 5 {
		t.Errorf("drained %d frames after Close, want 5", got)
	}
}

// TestBufferPropagatesTerminalError: a fatal intake error surfaces to
// the reader once the queue is empty.
func TestBufferPropagatesTerminalError(t *testing.T) {
	src := &dyingSource{healthy: 3, err: errTransient}
	b := NewBuffer(src, BufferConfig{Capacity: 64, SnapLen: 64})
	ring := capture.NewRing(8, 64)
	got := 0
	var err error
	for err == nil {
		var n int
		n, err = b.ReadBatch(ring)
		got += n
	}
	if got != 3 {
		t.Errorf("delivered %d frames, want 3", got)
	}
	if !errors.Is(err, errTransient) {
		t.Errorf("terminal err = %v, want the intake error", err)
	}
}

// TestBufferZeroAllocsSteadyState pins the copy-in/copy-out contract:
// once the slot ring is warm, pushes and pops allocate nothing.
func TestBufferZeroAllocsSteadyState(t *testing.T) {
	b := newDetachedBuffer(64, PolicyDrop)
	frames := burst(16)
	ring := capture.NewRing(16, 64)
	// Warm the slot Data capacities.
	b.push(frames)
	if _, err := b.ReadBatch(ring); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.push(frames)
		if _, err := b.ReadBatch(ring); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("push+pop allocates %.2f times per cycle", allocs)
	}
}

// TestBufferEmptyRead: a zero-length destination returns immediately.
func TestBufferEmptyRead(t *testing.T) {
	b := newDetachedBuffer(4, PolicyDrop)
	if n, err := b.ReadBatch(nil); n != 0 || err != nil {
		t.Errorf("ReadBatch(nil) = %d, %v", n, err)
	}
}

// tracingSource flags whether a ReadBatch call is in flight, so tests
// can prove nothing touches the source after Close returns.
type tracingSource struct {
	capture.Source
	inRead atomic.Bool
}

func (s *tracingSource) ReadBatch(frames []capture.Frame) (int, error) {
	s.inRead.Store(true)
	defer s.inRead.Store(false)
	return s.Source.ReadBatch(frames)
}

// TestBufferCloseJoinsIntake: Close must not return while the intake
// goroutine is still running — the statically visible join the goleak
// analyzer demands. Before the fix, Close only closed the source and
// the intake unwound asynchronously, so a reopen storm could stack up
// intakes still touching their half-dead sources.
func TestBufferCloseJoinsIntake(t *testing.T) {
	src := &tracingSource{Source: capture.NewLoopback()}
	b := NewBuffer(src, BufferConfig{Capacity: 4, SnapLen: 64})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if src.inRead.Load() {
		t.Fatal("Close returned while the intake was still inside ReadBatch")
	}
	select {
	case <-b.intakeDone:
	default:
		t.Fatal("intake goroutine still running after Close returned")
	}
}

// TestBufferReaderWakesOnClose: a reader parked on an empty queue must
// wake when the source closes.
func TestBufferReaderWakesOnClose(t *testing.T) {
	lb := capture.NewLoopback()
	b := NewBuffer(lb, BufferConfig{Capacity: 4, SnapLen: 64})
	done := make(chan error, 1)
	go func() {
		_, err := b.ReadBatch(capture.NewRing(1, 64))
		done <- err
	}()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, io.EOF) {
		t.Errorf("read after Close = %v, want io.EOF", err)
	}
}
