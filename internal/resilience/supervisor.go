package resilience

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/xrand"
)

// Supervisor defaults, applied by NewSupervisor for zero Config fields.
const (
	// DefaultMaxConsecutiveFailures is the give-up bound: this many
	// failures (reads or reopens) without one successful read in
	// between, and ReadBatch returns ErrExhausted.
	DefaultMaxConsecutiveFailures = 16
	// DefaultReopenAfter is how many consecutive transient errors one
	// source may return before the supervisor closes it and asks the
	// factory for a fresh one.
	DefaultReopenAfter = 3
	// DefaultBaseBackoff is the first retry delay; it doubles per
	// consecutive failure up to DefaultMaxBackoff.
	DefaultBaseBackoff = 5 * time.Millisecond
	// DefaultMaxBackoff caps the exponential backoff.
	DefaultMaxBackoff = 2 * time.Second
	// DefaultJitter is the ± fraction each backoff is perturbed by, so
	// a fleet of supervised sources does not hammer a shared upstream
	// in lockstep.
	DefaultJitter = 0.2
)

// ErrExhausted is returned (wrapped, with the last source error) when
// the consecutive-failure budget runs out: the source kept failing with
// "transient" errors and never delivered a frame between them. The
// daemon treats it like a fatal error — better a clean, alertable exit
// than an invisible retry loop forever.
var ErrExhausted = errors.New("resilience: source failure budget exhausted")

// ErrNoFactory is returned by NewSupervisor when Config.Open is nil.
var ErrNoFactory = errors.New("resilience: config needs an Open factory")

// SupervisorConfig parameterizes a Supervisor.
type SupervisorConfig struct {
	// Open creates (or re-creates) the underlying source. Required. It
	// is called lazily on the first ReadBatch and again after the
	// supervisor decides a source is broken (ReopenAfter consecutive
	// transient errors), so it must return a fresh, independent source
	// each call — e.g. a new Replay over the same trace bytes, or a
	// re-bound AF_PACKET socket.
	Open func() (capture.Source, error)
	// Classify triages source errors; Classify (the package default)
	// if nil.
	Classify Classifier
	// MaxConsecutiveFailures bounds failures without an intervening
	// successful read (DefaultMaxConsecutiveFailures if 0).
	MaxConsecutiveFailures int
	// ReopenAfter is how many consecutive transient errors one source
	// may return before it is closed and reopened via Open
	// (DefaultReopenAfter if 0; 1 reopens on every transient error).
	ReopenAfter int
	// BaseBackoff and MaxBackoff shape the exponential retry delay
	// (defaults if 0).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the ± fraction of each backoff (DefaultJitter if 0;
	// negative disables).
	Jitter float64
	// Seed drives the jitter deterministically (1 if 0).
	Seed uint64
	// Sleep replaces the interruptible backoff sleep; tests inject an
	// instant recorder. The default sleeps on a timer and wakes early
	// when the supervisor is closed.
	Sleep func(time.Duration)
	// Heartbeat, when set, is called after every successful ReadBatch —
	// the capture loop's liveness signal for a Watchdog probe.
	Heartbeat func()
	// Logf, when set, receives one line per classified failure,
	// reopen, and give-up.
	Logf func(format string, args ...any)
}

// SupervisorStats is a point-in-time view of the supervisor's counters
// for metrics export. All fields are cumulative.
type SupervisorStats struct {
	// Reads counts successful ReadBatch calls; Frames the frames they
	// delivered.
	Reads, Frames uint64
	// TransientErrors counts source errors classified transient.
	TransientErrors uint64
	// Reopens counts successful factory reopens after the initial open;
	// ReopenFailures counts factory calls that themselves failed.
	Reopens, ReopenFailures uint64
	// FatalErrors counts errors classified fatal (the read that
	// returned one also ended the supervisor).
	FatalErrors uint64
	// Backoffs counts backoff sleeps; BackoffTotal sums their
	// requested durations (bounded-backoff assertions divide these).
	Backoffs     uint64
	BackoffTotal time.Duration
	// LastError describes the most recent classified failure ("" if
	// none yet).
	LastError string
}

// Supervisor wraps a capture.Source factory with retry, reopen and
// classification so the pump loop above it only ever sees frames,
// io.EOF, or an error genuinely worth dying for. It implements
// capture.Source. ReadBatch must be called from one goroutine at a
// time; Close may race it from another (a signal handler), exactly like
// the sources it wraps.
type Supervisor struct {
	cfg SupervisorConfig
	rng *xrand.Rand

	mu  sync.Mutex     // guards src against Close racing reopen
	src capture.Source //bf:guardedby mu

	closed   atomic.Bool
	stopOnce sync.Once
	stop     chan struct{} // closed by Close; wakes the backoff sleep

	// Reader-goroutine state (no locking needed).
	opened      bool // first Open attempted
	consecutive int  // failures since the last successful read
	srcErrs     int  // consecutive transient errors on the current source

	reads, frames, transient, reopens, reopenFails, fatals atomic.Uint64
	backoffs                                               atomic.Uint64
	backoffTotal                                           atomic.Int64 // ns

	errMu   sync.Mutex
	lastErr string //bf:guardedby errMu
}

var _ capture.Source = (*Supervisor)(nil)

// NewSupervisor validates cfg, applies defaults, and returns a
// supervisor. The factory is not called until the first ReadBatch.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Open == nil {
		return nil, ErrNoFactory
	}
	if cfg.Classify == nil {
		cfg.Classify = Classify
	}
	if cfg.MaxConsecutiveFailures == 0 {
		cfg.MaxConsecutiveFailures = DefaultMaxConsecutiveFailures
	}
	if cfg.MaxConsecutiveFailures < 0 {
		return nil, fmt.Errorf("resilience: MaxConsecutiveFailures %d must be positive", cfg.MaxConsecutiveFailures)
	}
	if cfg.ReopenAfter == 0 {
		cfg.ReopenAfter = DefaultReopenAfter
	}
	if cfg.ReopenAfter < 0 {
		return nil, fmt.Errorf("resilience: ReopenAfter %d must be positive", cfg.ReopenAfter)
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.MaxBackoff < cfg.BaseBackoff {
		cfg.MaxBackoff = cfg.BaseBackoff
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultJitter
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 0.5 {
		cfg.Jitter = 0.5
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Supervisor{
		cfg:  cfg,
		rng:  xrand.New(seed),
		stop: make(chan struct{}),
	}, nil
}

// ReadBatch implements capture.Source. The happy path is a straight
// passthrough to the underlying source (no locks, no allocations);
// failures are classified, retried with jittered exponential backoff,
// and survived by reopening through the factory until the consecutive
// failure budget runs out.
func (s *Supervisor) ReadBatch(frames []capture.Frame) (int, error) {
	for {
		if s.closed.Load() {
			return 0, io.EOF
		}
		src := s.current()
		if src == nil {
			if err := s.reopen(); err != nil {
				return 0, err
			}
			continue
		}
		n, err := src.ReadBatch(frames)
		if err == nil {
			s.noteSuccess(n)
			return n, nil
		}
		switch class := s.cfg.Classify(err); class {
		case ClassEOF:
			// Deliver any frames that rode along with the clean close.
			if n > 0 {
				s.noteSuccess(n)
				return n, nil
			}
			return 0, io.EOF
		case ClassFatal:
			s.fatals.Add(1)
			s.setLastErr(err)
			s.logf("source error (fatal): %v", err)
			s.closeSrc()
			return 0, fmt.Errorf("resilience: fatal source error: %w", err)
		default: // transient
			s.transient.Add(1)
			s.setLastErr(err)
			s.consecutive++
			s.srcErrs++
			s.logf("source error (transient, %d consecutive): %v", s.consecutive, err)
			if s.consecutive >= s.cfg.MaxConsecutiveFailures {
				s.closeSrc()
				return 0, fmt.Errorf("%w (%d consecutive failures, last: %v)", ErrExhausted, s.consecutive, err)
			}
			if s.srcErrs >= s.cfg.ReopenAfter {
				// The source keeps failing: stop trusting it. The next
				// loop iteration reopens through the factory.
				s.closeSrc()
			}
			if !s.backoff() {
				return 0, io.EOF // closed during backoff
			}
		}
	}
}

// reopen asks the factory for a fresh source, retrying with backoff
// inside the same consecutive-failure budget as read errors.
func (s *Supervisor) reopen() error {
	for {
		if s.closed.Load() {
			return io.EOF
		}
		src, err := s.cfg.Open()
		if err == nil {
			s.install(src)
			s.srcErrs = 0
			if s.opened {
				s.reopens.Add(1)
				s.logf("source reopened")
			}
			s.opened = true
			return nil
		}
		s.setLastErr(err)
		if class := s.cfg.Classify(err); class == ClassFatal {
			s.logf("open failed (fatal): %v", err)
			return fmt.Errorf("resilience: fatal open error: %w", err)
		}
		s.reopenFails.Add(1)
		s.consecutive++
		s.logf("open failed (transient, %d consecutive): %v", s.consecutive, err)
		if s.consecutive >= s.cfg.MaxConsecutiveFailures {
			return fmt.Errorf("%w (%d consecutive failures, last: %v)", ErrExhausted, s.consecutive, err)
		}
		if !s.backoff() {
			return io.EOF
		}
	}
}

// noteSuccess resets the failure budget and backoff ladder after a
// delivered batch.
func (s *Supervisor) noteSuccess(n int) {
	s.consecutive = 0
	s.srcErrs = 0
	s.reads.Add(1)
	s.frames.Add(uint64(n))
	if s.cfg.Heartbeat != nil {
		s.cfg.Heartbeat()
	}
}

// backoff sleeps the jittered exponential delay for the current
// consecutive-failure count. It returns false if the supervisor was
// closed while (or before) sleeping.
func (s *Supervisor) backoff() bool {
	if s.closed.Load() {
		return false
	}
	d := s.cfg.BaseBackoff << uint(min(s.consecutive-1, 20))
	if d > s.cfg.MaxBackoff || d <= 0 {
		d = s.cfg.MaxBackoff
	}
	if s.cfg.Jitter > 0 {
		// Uniform in [1-j, 1+j] × d, then re-capped.
		d = time.Duration(float64(d) * (1 + s.cfg.Jitter*(2*s.rng.Float64()-1)))
		if d > s.cfg.MaxBackoff {
			d = s.cfg.MaxBackoff
		}
	}
	s.backoffs.Add(1)
	s.backoffTotal.Add(int64(d))
	if s.cfg.Sleep != nil {
		s.cfg.Sleep(d)
		return !s.closed.Load()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.stop:
		return false
	case <-t.C:
		return true
	}
}

// current returns the live underlying source (nil before the first open
// and after a reopen decision).
func (s *Supervisor) current() capture.Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src
}

// install publishes a fresh source, unless Close won the race — then
// the new source is closed immediately.
func (s *Supervisor) install(src capture.Source) {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		src.Close()
		return
	}
	s.src = src
	s.mu.Unlock()
}

// closeSrc closes and forgets the current source.
func (s *Supervisor) closeSrc() {
	s.mu.Lock()
	src := s.src
	s.src = nil
	s.mu.Unlock()
	if src != nil {
		src.Close()
	}
}

// Close implements capture.Source: idempotent, callable from any
// goroutine. The reader wakes from a blocked read (the underlying
// source's Close contract) or from a backoff sleep and returns io.EOF.
func (s *Supervisor) Close() error {
	s.closed.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	s.closeSrc()
	return nil
}

func (s *Supervisor) setLastErr(err error) {
	s.errMu.Lock()
	s.lastErr = err.Error()
	s.errMu.Unlock()
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Stats returns a copy of the counters. Safe to call concurrently with
// the reader.
func (s *Supervisor) Stats() SupervisorStats {
	s.errMu.Lock()
	lastErr := s.lastErr
	s.errMu.Unlock()
	return SupervisorStats{
		Reads:           s.reads.Load(),
		Frames:          s.frames.Load(),
		TransientErrors: s.transient.Load(),
		Reopens:         s.reopens.Load(),
		ReopenFailures:  s.reopenFails.Load(),
		FatalErrors:     s.fatals.Load(),
		Backoffs:        s.backoffs.Load(),
		BackoffTotal:    time.Duration(s.backoffTotal.Load()),
		LastError:       lastErr,
	}
}
