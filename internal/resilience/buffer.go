package resilience

import (
	"fmt"
	"io"
	"sync"

	"bitmapfilter/internal/capture"
)

// OverloadPolicy says what a shed frame *means*. The buffer itself can
// only discard frames it has no room to judge; the policy decides which
// failure semantics the deployment wants, and for a positive-listing
// reply filter the two are opposites:
//
//   - PolicyAdmit (fail-open): unjudged traffic is treated as admitted.
//     The link stays useful under overload, but every shed incoming
//     packet is a packet the filter never screened — an attacker who
//     can force overload buys penetration. This is the availability
//     posture.
//   - PolicyDrop (fail-closed): unjudged traffic is treated as dropped.
//     Overload costs legitimate replies (exactly the clients the paper
//     protects), but the filter never waves attack traffic through
//     unscreened. This is the security posture, and the default.
type OverloadPolicy uint8

const (
	// PolicyDrop is fail-closed: shed frames count as dropped.
	PolicyDrop OverloadPolicy = iota
	// PolicyAdmit is fail-open: shed frames count as admitted.
	PolicyAdmit
)

// String returns "drop" or "admit" (the -on-overload flag values).
func (p OverloadPolicy) String() string {
	switch p {
	case PolicyDrop:
		return "drop"
	case PolicyAdmit:
		return "admit"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy parses an -on-overload flag value.
func ParsePolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "drop":
		return PolicyDrop, nil
	case "admit":
		return PolicyAdmit, nil
	default:
		return 0, fmt.Errorf("resilience: unknown overload policy %q (want admit or drop)", s)
	}
}

// Buffer defaults.
const (
	DefaultCapacity      = 4096
	DefaultReadBatch     = 256
	DefaultHighWatermark = 0.9
	DefaultLowWatermark  = 0.7
)

// BufferConfig parameterizes a Buffer.
type BufferConfig struct {
	// Capacity is the bounded queue depth in frames
	// (DefaultCapacity if 0).
	Capacity int
	// SnapLen is the per-slot byte capacity
	// (capture.DefaultSnapLen if 0).
	SnapLen int
	// ReadBatch is the intake goroutine's batch size
	// (DefaultReadBatch if 0).
	ReadBatch int
	// HighWatermark starts shedding when depth/capacity reaches it;
	// LowWatermark stops shedding once depth/capacity falls back to it.
	// The hysteresis gap keeps the filter from flapping in and out of
	// shedding on every frame. Defaults 0.9 / 0.7.
	HighWatermark float64
	LowWatermark  float64
	// Policy is the fail-open/fail-closed accounting for shed frames.
	Policy OverloadPolicy
	// Heartbeat, when set, is called once per intake iteration — the
	// signal a Watchdog probe uses to tell "parked on a quiet source"
	// from "wedged".
	Heartbeat func()
	// Logf, when set, receives one line per shedding transition.
	Logf func(format string, args ...any)
}

// BufferStats is a point-in-time view for metrics export.
type BufferStats struct {
	// Accepted counts frames queued; Shed counts frames discarded under
	// overload. Accepted+Shed is every frame the source delivered.
	Accepted, Shed uint64
	// ShedEvents counts transitions into shedding mode.
	ShedEvents uint64
	// Depth is the current queue depth, MaxDepth the high-water mark,
	// Capacity the bound.
	Depth, MaxDepth, Capacity int
	// Shedding reports whether the buffer is currently shedding.
	Shedding bool
	// Policy echoes the configured overload policy.
	Policy OverloadPolicy
}

// Buffer decouples capture from filtering with a bounded frame queue:
// an intake goroutine drains the underlying source as fast as it
// produces, and the filter pulls from the queue at its own pace. When
// the filter falls behind and the queue passes the high watermark, new
// frames are shed (counted, never silently lost) until the queue drains
// past the low watermark — so a scan burst degrades the daemon
// predictably instead of growing memory without bound or back-pressuring
// the NIC into drops the daemon cannot see.
//
// Buffer implements capture.Source; Close closes the underlying source,
// the intake drains out, and readers consume the remaining queue before
// seeing io.EOF — which is exactly the graceful-drain order.
type Buffer struct {
	src capture.Source
	cfg BufferConfig

	mu   sync.Mutex
	cond *sync.Cond

	// Fixed circular queue; slot Data capacities are allocated once and
	// reused forever, so steady state pushes and pops are allocation
	// free.
	slots []capture.Frame //bf:guardedby mu
	head  int             //bf:guardedby mu
	count int             //bf:guardedby mu

	shedding bool //bf:guardedby mu
	// done flags that the intake finished; err is its terminal error.
	done bool  //bf:guardedby mu
	err  error //bf:guardedby mu

	accepted   uint64 //bf:guardedby mu
	shed       uint64 //bf:guardedby mu
	shedEvents uint64 //bf:guardedby mu
	maxDepth   int    //bf:guardedby mu

	closeOnce sync.Once
	// intakeDone is closed when the intake goroutine exits — the join
	// Close blocks on, so no goroutine outlives the Buffer across
	// reopen cycles.
	intakeDone chan struct{}
}

var _ capture.Source = (*Buffer)(nil)

// NewBuffer wraps src and starts the intake goroutine. The goroutine
// exits when the source does (EOF, fatal error, or Close).
func NewBuffer(src capture.Source, cfg BufferConfig) *Buffer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SnapLen <= 0 {
		cfg.SnapLen = capture.DefaultSnapLen
	}
	if cfg.ReadBatch <= 0 {
		cfg.ReadBatch = DefaultReadBatch
	}
	if cfg.HighWatermark <= 0 || cfg.HighWatermark > 1 {
		cfg.HighWatermark = DefaultHighWatermark
	}
	if cfg.LowWatermark <= 0 || cfg.LowWatermark > cfg.HighWatermark {
		cfg.LowWatermark = min(DefaultLowWatermark, cfg.HighWatermark)
	}
	b := &Buffer{
		src:        src,
		cfg:        cfg,
		slots:      capture.NewRing(cfg.Capacity, cfg.SnapLen),
		intakeDone: make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.intake()
	return b
}

// highDepth and lowDepth convert the watermark fractions to frame
// counts. High is clamped to ≥1 so a tiny queue still accepts frames.
func (b *Buffer) highDepth() int { return max(1, int(float64(b.cfg.Capacity)*b.cfg.HighWatermark)) }
func (b *Buffer) lowDepth() int  { return int(float64(b.cfg.Capacity) * b.cfg.LowWatermark) }

// intake drains the source into the queue until it ends.
func (b *Buffer) intake() {
	defer close(b.intakeDone)
	ring := capture.NewRing(b.cfg.ReadBatch, b.cfg.SnapLen)
	for {
		n, err := b.src.ReadBatch(ring)
		if b.cfg.Heartbeat != nil {
			b.cfg.Heartbeat()
		}
		if n > 0 {
			b.push(ring[:n])
		}
		if err != nil {
			b.finish(err)
			return
		}
	}
}

// push enqueues a batch, shedding per the watermarks.
func (b *Buffer) push(frames []capture.Frame) {
	b.mu.Lock()
	for i := range frames {
		if b.shedding && b.count <= b.lowDepth() {
			b.shedding = false
			if logShedEvent(b.shedEvents) {
				b.logf("overload cleared (depth %d/%d); %d frames shed over %d events", b.count, b.cfg.Capacity, b.shed, b.shedEvents)
			}
		}
		if !b.shedding && b.count >= b.highDepth() {
			b.shedding = true
			b.shedEvents++
			if logShedEvent(b.shedEvents) {
				b.logf("overload: queue at %d/%d, shedding (%s, event %d)", b.count, b.cfg.Capacity, b.cfg.Policy, b.shedEvents)
			}
		}
		if b.shedding {
			b.shed++
			continue
		}
		slot := &b.slots[(b.head+b.count)%len(b.slots)]
		slot.Time = frames[i].Time
		slot.OrigLen = frames[i].OrigLen
		slot.Data = append(slot.Data[:0], frames[i].Data...)
		b.count++
		if b.count > b.maxDepth {
			b.maxDepth = b.count
		}
		b.accepted++
	}
	b.mu.Unlock()
	b.cond.Signal()
}

// finish records the intake's terminal error and wakes all readers.
func (b *Buffer) finish(err error) {
	b.mu.Lock()
	b.done = true
	b.err = err
	b.mu.Unlock()
	b.cond.Broadcast()
}

// ReadBatch implements capture.Source: it blocks until at least one
// frame is queued or the intake has finished, drains up to len(frames)
// entries into the caller's buffers, and — once the queue is empty —
// returns the intake's terminal error (io.EOF after a clean close).
func (b *Buffer) ReadBatch(frames []capture.Frame) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	b.mu.Lock()
	for b.count == 0 && !b.done {
		b.cond.Wait()
	}
	if b.count == 0 {
		err := b.err
		b.mu.Unlock()
		if err == nil {
			err = io.EOF
		}
		return 0, err
	}
	n := 0
	for n < len(frames) && b.count > 0 {
		slot := &b.slots[b.head]
		frames[n].Time = slot.Time
		frames[n].OrigLen = slot.OrigLen
		frames[n].Data = append(frames[n].Data[:0], slot.Data...)
		b.head = (b.head + 1) % len(b.slots)
		b.count--
		n++
	}
	if b.shedding && b.count <= b.lowDepth() {
		b.shedding = false
		if logShedEvent(b.shedEvents) {
			b.logf("overload cleared (depth %d/%d); %d frames shed over %d events", b.count, b.cfg.Capacity, b.shed, b.shedEvents)
		}
	}
	b.mu.Unlock()
	return n, nil
}

// logShedEvent rate-limits overload logging under sustained pressure: a
// queue flapping across its watermarks thousands of times per second
// must not flood the log, so only power-of-two event counts (1st, 2nd,
// 4th, 8th, …) are reported. The counters on /metrics stay exact.
func logShedEvent(events uint64) bool {
	return events&(events-1) == 0
}

// Close implements capture.Source: it closes the underlying source,
// which winds the intake down (the Source contract says a blocked
// ReadBatch returns after Close), and then joins the intake goroutine
// before returning — so when Close returns, nothing touches the source
// anymore and nothing is leaked across a reopen cycle. Readers drain
// the remaining queue and then see the terminal error. Idempotent,
// callable from any goroutine.
func (b *Buffer) Close() error {
	var err error
	b.closeOnce.Do(func() { err = b.src.Close() })
	<-b.intakeDone
	return err
}

func (b *Buffer) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// Stats returns a consistent snapshot of the counters.
func (b *Buffer) Stats() BufferStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BufferStats{
		Accepted:   b.accepted,
		Shed:       b.shed,
		ShedEvents: b.shedEvents,
		Depth:      b.count,
		MaxDepth:   b.maxDepth,
		Capacity:   b.cfg.Capacity,
		Shedding:   b.shedding,
		Policy:     b.cfg.Policy,
	}
}
