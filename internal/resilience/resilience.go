// Package resilience is the supervision and graceful-degradation layer
// between a capture source and the filter data plane. The edge filter
// only protects clients while the box running it stays up and keeps
// judging packets — and a 500K pps scan is precisely when capture
// sources hiccup, queues back up, and operators need liveness signals.
// This package makes the packet plane survive the attack it observes:
//
//   - Supervisor wraps any capture.Source with error classification
//     (transient vs. fatal), bounded retry with jittered exponential
//     backoff, and reopen-on-failure through a factory, so a flapping
//     AF_PACKET socket or a truncated pcap no longer kills the daemon.
//   - Buffer is a bounded frame-ring stage with watermark-based
//     shedding and an explicit fail-open vs. fail-closed overload
//     policy. For a positive-listing reply filter the two failure
//     semantics have opposite security meaning (see OverloadPolicy);
//     everything shed is counted.
//   - Watchdog collects heartbeats from the capture loop, the batch
//     loop and the checkpointer, flags stalls (a wedged loop, a
//     rotation that stopped advancing), and Health turns them into
//     /healthz (liveness) and /readyz (readiness) answers.
//
// Both Supervisor and Buffer implement capture.Source, so they compose:
//
//	sup, _ := resilience.NewSupervisor(resilience.SupervisorConfig{Open: open})
//	buf := resilience.NewBuffer(sup, resilience.BufferConfig{Policy: resilience.PolicyDrop})
//	// feed buf to the same pump loop that read the raw source before
//
// Everything is deterministic given injected hooks: the backoff jitter
// is seeded, sleeps and clocks are injectable, so the chaos tests drive
// thousands of failures without wall-clock time.
package resilience

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"syscall"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/pcap"
)

// Class is the supervisor's triage of a source error: does the stream
// end cleanly, is the source worth retrying, or is the configuration
// itself broken?
type Class uint8

const (
	// ClassEOF is a clean end of stream: a finite trace fully replayed,
	// or the source deliberately closed. The supervisor propagates
	// io.EOF and the daemon drains out.
	ClassEOF Class = iota
	// ClassTransient is a recoverable hiccup: an interrupted syscall, a
	// record truncated mid-stream, a socket that flapped. The supervisor
	// retries the source after a backoff and eventually reopens it via
	// the factory. Unknown errors default here — liveness first — but
	// the consecutive-failure budget bounds how long a persistent
	// "transient" error can spin before the supervisor gives up.
	ClassTransient
	// ClassFatal is a structural or configuration error retrying cannot
	// fix: a file that is not a pcap, a missing path, a permission
	// problem. The supervisor closes the source and returns the error.
	ClassFatal
)

// String names the class for logs.
func (c Class) String() string {
	switch c {
	case ClassEOF:
		return "eof"
	case ClassTransient:
		return "transient"
	case ClassFatal:
		return "fatal"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Classifier triages one non-nil source error.
type Classifier func(error) Class

// Classify is the default Classifier. The decisions the chaos and
// capture tests pin:
//
//   - io.EOF and capture.ErrClosed end the stream cleanly (ClassEOF).
//   - io.ErrUnexpectedEOF — a pcap record truncated mid-stream — is
//     transient: reopening replays the trace's good prefix, which keeps
//     a daemon looping a damaged trace alive instead of killing it.
//   - pcap.ErrSnapLen (a record claiming more bytes than the snapshot
//     length — corrupt framing mid-stream) is likewise transient.
//   - pcap.ErrBadMagic and pcap.ErrBadVersion mean the input is not a
//     readable pcap at all: fatal.
//   - fs.ErrNotExist and fs.ErrPermission are configuration problems a
//     reopen loop would only amplify: fatal.
//   - Interrupted or would-block syscalls (EINTR, EAGAIN) are
//     transient, matching the AF_PACKET backend's own retry behavior.
//   - Anything unrecognized is transient, bounded by the supervisor's
//     consecutive-failure budget.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassEOF
	case errors.Is(err, io.EOF), errors.Is(err, capture.ErrClosed):
		return ClassEOF
	case errors.Is(err, pcap.ErrBadMagic), errors.Is(err, pcap.ErrBadVersion):
		return ClassFatal
	case errors.Is(err, fs.ErrNotExist), errors.Is(err, fs.ErrPermission):
		return ClassFatal
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, pcap.ErrSnapLen):
		return ClassTransient
	case errors.Is(err, syscall.EINTR), errors.Is(err, syscall.EAGAIN):
		return ClassTransient
	default:
		return ClassTransient
	}
}
