package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/live"
	"bitmapfilter/internal/resilience"
)

// TestHealthEndpoints exercises the WithHealth wiring: /readyz tracks the
// lifecycle, /healthz flips 503 on a watchdog stall, and /metrics grows
// the bitmapfilter_resilience_* series.
func TestHealthEndpoints(t *testing.T) {
	var clock atomic.Int64
	wd := resilience.NewWatchdog(func() time.Duration { return time.Duration(clock.Load()) })
	probe := wd.Heartbeat("pump", 100*time.Millisecond)
	probe.Beat()
	health := resilience.NewHealth(wd)

	inner := core.MustNew(
		core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second))
	lf, err := live.New(inner)
	if err != nil {
		t.Fatal(err)
	}
	api, err := New(lf, WithHealth(health))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Starting: live, not ready.
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz while starting = %d", code)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "starting") {
		t.Errorf("/readyz while starting = %d %q", code, body)
	}

	health.SetReady()
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz when ready = %d", code)
	}

	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"bitmapfilter_resilience_live 1",
		"bitmapfilter_resilience_ready 1",
		`bitmapfilter_resilience_state{state="ready"} 1`,
		`bitmapfilter_resilience_state{state="starting"} 0`,
		`bitmapfilter_resilience_probe_beats_total{probe="pump"} 1`,
		`bitmapfilter_resilience_probe_stalled{probe="pump"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Stall the probe: liveness (and with it readiness) flips 503.
	clock.Store(int64(time.Second))
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "pump stalled") {
		t.Errorf("/healthz while stalled = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 503 {
		t.Errorf("/readyz while stalled = %d", code)
	}
	if _, m := get("/metrics"); !strings.Contains(m, "bitmapfilter_resilience_live 0") {
		t.Error("/metrics live gauge did not drop")
	}

	// Recover, then drain: live but not ready.
	probe.Beat()
	health.SetDraining()
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz while draining = %d", code)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Errorf("/readyz while draining = %d %q", code, body)
	}
}

// TestHealthzWithoutHealth pins the legacy surface: no WithHealth means
// /healthz stays unconditionally 200 and /readyz answers ok.
func TestHealthzWithoutHealth(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s without health = %d", path, resp.StatusCode)
		}
	}
}
