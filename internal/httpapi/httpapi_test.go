package httpapi

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/live"
	"bitmapfilter/internal/packet"
)

func newAPI(t *testing.T) (*API, *live.Filter) {
	t.Helper()
	inner := core.MustNew(
		core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second))
	lf, err := live.New(inner)
	if err != nil {
		t.Fatal(err)
	}
	api, err := New(lf)
	if err != nil {
		t.Fatal(err)
	}
	return api, lf
}

func TestNewNilFilter(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNilFilter) {
		t.Errorf("error = %v", err)
	}
}

func TestHealthz(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStatsJSON(t *testing.T) {
	api, lf := newAPI(t)
	tup := packet.Tuple{
		Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 7),
		SrcPort: 4000, DstPort: 80, Proto: packet.TCP,
	}
	lf.Observe(tup, packet.Outgoing, packet.SYN, 60)
	lf.Observe(tup.Reverse(), packet.Incoming, packet.ACK, 60)
	lf.Observe(packet.Tuple{
		Src: packet.AddrFrom4(203, 0, 113, 9), Dst: packet.AddrFrom4(10, 0, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.TCP,
	}, packet.Incoming, packet.SYN, 60)

	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got statsPayload
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Order != 12 || got.Vectors != 4 || got.Hashes != 3 {
		t.Errorf("config: %+v", got)
	}
	if got.OutPackets != 1 || got.InPackets != 2 || got.InPassed != 1 || got.InDropped != 1 {
		t.Errorf("counters: %+v", got)
	}
	if got.Marks != 1 || got.Utilization == 0 {
		t.Errorf("bitmap state: marks=%d U=%v", got.Marks, got.Utilization)
	}
	if len(got.VectorUtilization) != 4 {
		t.Errorf("vector utilizations: %v", got.VectorUtilization)
	}
	if got.MemoryBytes != 4*(1<<12)/8 {
		t.Errorf("memory = %d", got.MemoryBytes)
	}
}

func TestMetricsExposition(t *testing.T) {
	api, lf := newAPI(t)
	lf.Observe(packet.Tuple{
		Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 7),
		SrcPort: 4000, DstPort: 80, Proto: packet.TCP,
	}, packet.Outgoing, packet.ACK, 60)

	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, metric := range []string{
		"bitmapfilter_utilization",
		"bitmapfilter_marks_total 1",
		"bitmapfilter_out_packets_total 1",
		"bitmapfilter_rotations_total",
		"# TYPE bitmapfilter_utilization gauge",
		"# TYPE bitmapfilter_marks_total counter",
		"# TYPE bitmapfilter_vector_utilization gauge",
		`bitmapfilter_vector_utilization{vector="0"}`,
		`bitmapfilter_vector_utilization{vector="3"}`,
		"bitmapfilter_current_vector_index 0",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics missing %q\n%s", metric, body)
		}
	}
}

// TestShardedAPDExposition mounts the API directly on a sharded filter
// with an APD policy attached and checks that /stats carries the APD
// fields plus the per-shard breakdown, and /metrics the aggregate and
// per-shard gauges.
func TestShardedAPDExposition(t *testing.T) {
	rp, err := core.NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.NewSharded(4, core.WithOrder(12), core.WithAPD(rp))
	if err != nil {
		t.Fatal(err)
	}
	api, err := New(sh)
	if err != nil {
		t.Fatal(err)
	}
	// Incoming-only probes: each shard spares its first admitted probe and
	// then saturates its clone's ratio indicator at p = 1.
	for i := 0; i < 64; i++ {
		sh.Process(packet.Packet{
			Tuple: packet.Tuple{
				Src: packet.AddrFrom4(203, 0, 113, byte(i)), Dst: packet.AddrFrom4(10, 0, 0, 1),
				SrcPort: 80, DstPort: uint16(5000 + i), Proto: packet.TCP,
			},
			Dir: packet.Incoming, Flags: packet.SYN, Length: 60,
		})
	}

	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var got statsPayload
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !got.APDEnabled || got.APDPolicy != "apd-ratio" {
		t.Errorf("apd fields: enabled=%v policy=%q", got.APDEnabled, got.APDPolicy)
	}
	if got.APDDropProbability == 0 {
		t.Error("aggregate apdDropProbability = 0 after an incoming-only flood")
	}
	if len(got.Shards) != 4 {
		t.Fatalf("shards payload has %d entries, want 4", len(got.Shards))
	}
	var inPackets, spared uint64
	for _, sp := range got.Shards {
		inPackets += sp.InPackets
		spared += sp.APDSpared
	}
	if inPackets != got.InPackets {
		t.Errorf("per-shard inPackets sum to %d, aggregate says %d", inPackets, got.InPackets)
	}
	if spared != got.APDSpared || spared == 0 {
		t.Errorf("per-shard apdSpared sum to %d, aggregate says %d", spared, got.APDSpared)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, metric := range []string{
		"bitmapfilter_apd_enabled 1",
		"bitmapfilter_apd_drop_probability",
		"# TYPE bitmapfilter_shard_apd_drop_probability gauge",
		`bitmapfilter_shard_apd_drop_probability{shard="0"}`,
		`bitmapfilter_shard_apd_drop_probability{shard="3"}`,
		`bitmapfilter_shard_utilization{shard="0"}`,
		"# TYPE bitmapfilter_shard_apd_spared_total counter",
		`bitmapfilter_shard_apd_spared_total{shard="0"}`,
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics missing %q\n%s", metric, body)
		}
	}
}

// TestUnshardedHasNoShardBreakdown pins the inverse: a plain live filter
// reports no shards array and no per-shard metrics.
func TestUnshardedHasNoShardBreakdown(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var got statsPayload
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != nil {
		t.Errorf("unsharded filter reported shards: %+v", got.Shards)
	}
	if got.APDEnabled {
		t.Error("APD reported enabled with no policy attached")
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "bitmapfilter_shard_") {
		t.Error("unsharded filter exposed per-shard metrics")
	}
	if !strings.Contains(string(raw), "bitmapfilter_apd_enabled 0") {
		t.Error("metrics missing bitmapfilter_apd_enabled 0")
	}
}

func TestPunch(t *testing.T) {
	api, lf := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/punch?local=10.0.0.5&port=20000&remote=198.51.100.7&proto=tcp", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The punched connection is now admitted.
	v := lf.Observe(packet.Tuple{
		Src: packet.AddrFrom4(198, 51, 100, 7), Dst: packet.AddrFrom4(10, 0, 0, 5),
		SrcPort: 20, DstPort: 20000, Proto: packet.TCP,
	}, packet.Incoming, packet.SYN, 60)
	if v != filtering.Pass {
		t.Error("punched connection dropped")
	}
}

func TestPunchValidation(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	bad := []string{
		"/punch?local=nonsense&port=1&remote=1.2.3.4",
		"/punch?local=1.2.3.4&port=0&remote=1.2.3.4",
		"/punch?local=1.2.3.4&port=99999&remote=1.2.3.4",
		"/punch?local=1.2.3.4&port=80&remote=1.2.3",
		"/punch?local=1.2.3.4&port=80&remote=1.2.3.4&proto=icmp",
		"/punch?local=1.2.3.999&port=80&remote=1.2.3.4",
	}
	for _, path := range bad {
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s status = %d, want 400", path, resp.StatusCode)
		}
	}
	// GET on /punch is not allowed.
	resp, err := http.Get(srv.URL + "/punch?local=1.2.3.4&port=80&remote=1.2.3.4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /punch status = %d", resp.StatusCode)
	}
}

func TestUnknownPath(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
