package httpapi

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/live"
	"bitmapfilter/internal/packet"
)

func newAPI(t *testing.T) (*API, *live.Filter) {
	t.Helper()
	inner := core.MustNew(
		core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second))
	lf, err := live.New(inner)
	if err != nil {
		t.Fatal(err)
	}
	api, err := New(lf)
	if err != nil {
		t.Fatal(err)
	}
	return api, lf
}

func TestNewNilFilter(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNilFilter) {
		t.Errorf("error = %v", err)
	}
}

func TestHealthz(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStatsJSON(t *testing.T) {
	api, lf := newAPI(t)
	tup := packet.Tuple{
		Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 7),
		SrcPort: 4000, DstPort: 80, Proto: packet.TCP,
	}
	lf.Observe(tup, packet.Outgoing, packet.SYN, 60)
	lf.Observe(tup.Reverse(), packet.Incoming, packet.ACK, 60)
	lf.Observe(packet.Tuple{
		Src: packet.AddrFrom4(203, 0, 113, 9), Dst: packet.AddrFrom4(10, 0, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.TCP,
	}, packet.Incoming, packet.SYN, 60)

	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got statsPayload
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Order != 12 || got.Vectors != 4 || got.Hashes != 3 {
		t.Errorf("config: %+v", got)
	}
	if got.OutPackets != 1 || got.InPackets != 2 || got.InPassed != 1 || got.InDropped != 1 {
		t.Errorf("counters: %+v", got)
	}
	if got.Marks != 1 || got.Utilization == 0 {
		t.Errorf("bitmap state: marks=%d U=%v", got.Marks, got.Utilization)
	}
	if len(got.VectorUtilization) != 4 {
		t.Errorf("vector utilizations: %v", got.VectorUtilization)
	}
	if got.MemoryBytes != 4*(1<<12)/8 {
		t.Errorf("memory = %d", got.MemoryBytes)
	}
}

func TestMetricsExposition(t *testing.T) {
	api, lf := newAPI(t)
	lf.Observe(packet.Tuple{
		Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 7),
		SrcPort: 4000, DstPort: 80, Proto: packet.TCP,
	}, packet.Outgoing, packet.ACK, 60)

	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, metric := range []string{
		"bitmapfilter_utilization",
		"bitmapfilter_marks_total 1",
		"bitmapfilter_out_packets_total 1",
		"bitmapfilter_rotations_total",
		"# TYPE bitmapfilter_utilization gauge",
		"# TYPE bitmapfilter_marks_total counter",
		"# TYPE bitmapfilter_vector_utilization gauge",
		`bitmapfilter_vector_utilization{vector="0"}`,
		`bitmapfilter_vector_utilization{vector="3"}`,
		"bitmapfilter_current_vector_index 0",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics missing %q\n%s", metric, body)
		}
	}
}

func TestPunch(t *testing.T) {
	api, lf := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/punch?local=10.0.0.5&port=20000&remote=198.51.100.7&proto=tcp", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The punched connection is now admitted.
	v := lf.Observe(packet.Tuple{
		Src: packet.AddrFrom4(198, 51, 100, 7), Dst: packet.AddrFrom4(10, 0, 0, 5),
		SrcPort: 20, DstPort: 20000, Proto: packet.TCP,
	}, packet.Incoming, packet.SYN, 60)
	if v != filtering.Pass {
		t.Error("punched connection dropped")
	}
}

func TestPunchValidation(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	bad := []string{
		"/punch?local=nonsense&port=1&remote=1.2.3.4",
		"/punch?local=1.2.3.4&port=0&remote=1.2.3.4",
		"/punch?local=1.2.3.4&port=99999&remote=1.2.3.4",
		"/punch?local=1.2.3.4&port=80&remote=1.2.3",
		"/punch?local=1.2.3.4&port=80&remote=1.2.3.4&proto=icmp",
		"/punch?local=1.2.3.999&port=80&remote=1.2.3.4",
	}
	for _, path := range bad {
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s status = %d, want 400", path, resp.StatusCode)
		}
	}
	// GET on /punch is not allowed.
	resp, err := http.Get(srv.URL + "/punch?local=1.2.3.4&port=80&remote=1.2.3.4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /punch status = %d", resp.StatusCode)
	}
}

func TestUnknownPath(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
