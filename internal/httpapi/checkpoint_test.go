package httpapi

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bitmapfilter/internal/checkpoint"
)

// fakeCheckpointer records CheckpointNow calls and serves canned stats.
type fakeCheckpointer struct {
	calls int
	err   error
	stats checkpoint.Stats
}

func (f *fakeCheckpointer) CheckpointNow() error {
	f.calls++
	if f.err == nil {
		f.stats.Successes++
		f.stats.LastSuccess = time.Now()
	}
	return f.err
}

func (f *fakeCheckpointer) Stats() checkpoint.Stats { return f.stats }

func newCheckpointAPI(t *testing.T, cp CheckpointControl, res checkpoint.RestoreResult) *httptest.Server {
	t.Helper()
	api, lf := newAPI(t)
	_ = lf
	api2, err := New(api.filter, WithCheckpointer(cp, res))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api2)
	t.Cleanup(srv.Close)
	return srv
}

func TestCheckpointEndpoint(t *testing.T) {
	cp := &fakeCheckpointer{stats: checkpoint.Stats{LastBytes: 1234}}
	srv := newCheckpointAPI(t, cp, checkpoint.RestoreResult{
		Outcome: checkpoint.OutcomePrimary, File: "/var/lib/bf/state.bmf",
	})

	resp, err := http.Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if cp.calls != 1 {
		t.Errorf("CheckpointNow called %d times, want 1", cp.calls)
	}
	if !strings.Contains(string(body), "1234 bytes") {
		t.Errorf("body = %q, want byte count", body)
	}

	// GET must not trigger a save.
	getResp, err := http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode == http.StatusOK {
		t.Error("GET /checkpoint succeeded, want method rejection")
	}
	if cp.calls != 1 {
		t.Errorf("GET triggered a save (calls=%d)", cp.calls)
	}
}

func TestCheckpointEndpointError(t *testing.T) {
	cp := &fakeCheckpointer{err: errors.New("disk full")}
	srv := newCheckpointAPI(t, cp, checkpoint.RestoreResult{})

	resp, err := http.Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "disk full") {
		t.Errorf("body = %q, want failure reason", body)
	}
}

func TestCheckpointAbsentWithoutOption(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /checkpoint without checkpointer = %d, want 404", resp.StatusCode)
	}
}

func TestStatsIncludesCheckpoint(t *testing.T) {
	cp := &fakeCheckpointer{stats: checkpoint.Stats{
		Interval:  30 * time.Second,
		Attempts:  7,
		Successes: 5,
		Failures:  2,
		LastBytes: 4096,
		LastError: "transient",
	}}
	srv := newCheckpointAPI(t, cp, checkpoint.RestoreResult{
		Outcome: checkpoint.OutcomeBackup, File: "/s.bmf.bak",
	})

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Checkpoint *struct {
			RestoreOutcome        string  `json:"restoreOutcome"`
			RestoredFrom          string  `json:"restoredFrom"`
			IntervalNs            int64   `json:"intervalNs"`
			Attempts              uint64  `json:"attempts"`
			Successes             uint64  `json:"successes"`
			Failures              uint64  `json:"failures"`
			LastSuccessAgeSeconds float64 `json:"lastSuccessAgeSeconds"`
			LastBytes             int64   `json:"lastBytes"`
			LastError             string  `json:"lastError"`
		} `json:"checkpoint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	c := payload.Checkpoint
	if c == nil {
		t.Fatal("stats payload has no checkpoint section")
	}
	if c.RestoreOutcome != "backup" || c.RestoredFrom != "/s.bmf.bak" {
		t.Errorf("restore = %q from %q", c.RestoreOutcome, c.RestoredFrom)
	}
	if c.Attempts != 7 || c.Successes != 5 || c.Failures != 2 || c.LastBytes != 4096 {
		t.Errorf("counters wrong: %+v", c)
	}
	if c.LastSuccessAgeSeconds != -1 {
		t.Errorf("age before first success = %v, want -1", c.LastSuccessAgeSeconds)
	}
	if c.LastError != "transient" {
		t.Errorf("lastError = %q", c.LastError)
	}
}

func TestStatsOmitsCheckpointWhenDisabled(t *testing.T) {
	api, _ := newAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), "\"checkpoint\"") {
		t.Error("stats includes checkpoint section without a checkpointer")
	}
}

func TestMetricsCheckpointSeries(t *testing.T) {
	cp := &fakeCheckpointer{stats: checkpoint.Stats{
		Attempts: 3, Successes: 3, LastBytes: 512,
		LastSuccess: time.Now().Add(-2 * time.Second),
	}}
	srv := newCheckpointAPI(t, cp, checkpoint.RestoreResult{
		Outcome: checkpoint.OutcomePrimary, File: "/s.bmf",
	})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"bitmapfilter_checkpoint_enabled 1",
		"bitmapfilter_checkpoint_attempts_total 3",
		"bitmapfilter_checkpoint_success_total 3",
		"bitmapfilter_checkpoint_failures_total 0",
		"bitmapfilter_checkpoint_last_size_bytes 512",
		`bitmapfilter_checkpoint_restore_outcome{outcome="primary"} 1`,
		`bitmapfilter_checkpoint_restore_outcome{outcome="backup"} 0`,
		`bitmapfilter_checkpoint_restore_outcome{outcome="cold-start-empty"} 0`,
		`bitmapfilter_checkpoint_restore_outcome{outcome="cold-start-corrupt"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "bitmapfilter_checkpoint_last_success_age_seconds") {
		t.Error("metrics missing last-success age gauge")
	}

	// Without a checkpointer the enabled gauge reads 0 and no other
	// checkpoint series appear.
	api, _ := newAPI(t)
	plain := httptest.NewServer(api)
	defer plain.Close()
	resp2, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), "bitmapfilter_checkpoint_enabled 0") {
		t.Error("disabled gauge missing")
	}
	if strings.Contains(string(body2), "bitmapfilter_checkpoint_attempts_total") {
		t.Error("checkpoint counters exported without a checkpointer")
	}
}
