// Package httpapi exposes a monitoring and control plane for a live
// bitmap filter over HTTP, the surface an operator integration would
// scrape and script against:
//
//	GET  /healthz     liveness probe (503 when a supervised loop stalls)
//	GET  /readyz      readiness probe (503 while starting or draining)
//	GET  /stats       full filter introspection as JSON
//	GET  /metrics     Prometheus text exposition of the key gauges/counters
//	POST /punch       §5.1 hole punching: ?local=10.0.0.5&port=20000
//	                  &remote=198.51.100.7&proto=tcp
//	POST /checkpoint  persist a snapshot now (with WithCheckpointer)
//
// Everything is stdlib net/http; construct the handler with New and mount
// it on any server.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bitmapfilter/internal/checkpoint"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/resilience"
	"bitmapfilter/internal/tenant"
)

// ErrNilFilter is returned by New when no filter is supplied.
var ErrNilFilter = errors.New("httpapi: nil filter")

// Filter is the surface the API scrapes and controls. The wall-clock
// adapter (*live.Filter) satisfies it, as do *core.Safe and
// *core.Sharded for embedders that drive virtual time themselves.
type Filter interface {
	Stats() core.Stats
	PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto)
}

// ShardStatser is the optional per-shard introspection extension.
// *core.Sharded implements it natively and *live.Filter forwards it (nil
// for an unsharded inner filter); when snapshots are present, /stats and
// /metrics include per-shard breakdowns.
type ShardStatser interface {
	ShardStats() []core.Stats
}

// TenantStatser is the optional per-tenant introspection extension.
// *tenant.Set implements it natively and *live.Filter forwards it (nil
// for a single-tenant inner filter); when snapshots are present, /stats
// gains a per-tenant array and /metrics the bitmapfilter_tenant_*
// series, each labeled with the tenant id.
type TenantStatser interface {
	TenantStats() []tenant.Stat
	UnroutedPackets() uint64
}

// CheckpointControl is the checkpoint surface the API drives:
// *checkpoint.Checkpointer implements it.
type CheckpointControl interface {
	// CheckpointNow persists one snapshot synchronously.
	CheckpointNow() error
	// Stats returns the checkpointer's counters for metrics export.
	Stats() checkpoint.Stats
}

// Option configures optional API surfaces.
type Option interface {
	apply(*API)
}

type checkpointOption struct {
	ctl     CheckpointControl
	restore checkpoint.RestoreResult
}

func (o checkpointOption) apply(a *API) {
	a.checkpoints = o.ctl
	a.restore = o.restore
}

// WithCheckpointer enables the checkpoint control plane: POST
// /checkpoint triggers an immediate save, and /stats and /metrics gain
// the bitmapfilter_checkpoint_* series, including the startup restore
// outcome.
func WithCheckpointer(ctl CheckpointControl, restore checkpoint.RestoreResult) Option {
	return checkpointOption{ctl: ctl, restore: restore}
}

type healthOption struct{ h *resilience.Health }

func (o healthOption) apply(a *API) { a.health = o.h }

// WithHealth wires the resilience layer's health view into the probes
// and metrics: /healthz answers 503 when a supervised loop stalls,
// /readyz answers 503 until the daemon is ready (and again once it
// drains), and /metrics gains the bitmapfilter_resilience_* series —
// lifecycle state plus per-probe beats, ages and stall flags.
func WithHealth(h *resilience.Health) Option {
	return healthOption{h: h}
}

// API serves the endpoints for one live filter.
type API struct {
	filter      Filter
	mux         *http.ServeMux
	start       time.Time
	checkpoints CheckpointControl
	restore     checkpoint.RestoreResult
	health      *resilience.Health
}

var _ http.Handler = (*API)(nil)

// New builds the handler around f.
func New(f Filter, opts ...Option) (*API, error) {
	if f == nil {
		return nil, ErrNilFilter
	}
	a := &API{
		filter: f,
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	for _, o := range opts {
		o.apply(a)
	}
	a.mux.HandleFunc("GET /healthz", a.handleHealthz)
	a.mux.HandleFunc("GET /readyz", a.handleReadyz)
	a.mux.HandleFunc("GET /stats", a.handleStats)
	a.mux.HandleFunc("GET /metrics", a.handleMetrics)
	a.mux.HandleFunc("POST /punch", a.handlePunch)
	if a.checkpoints != nil {
		a.mux.HandleFunc("POST /checkpoint", a.handleCheckpoint)
	}
	return a, nil
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

func (a *API) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if a.health != nil {
		if ok, detail := a.health.Live(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "stalled:", detail)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers the readiness probe. Without a health view the
// daemon is ready whenever it serves (the historical behavior); with one
// it is ready only in StateReady with no stalled probes, so a load
// balancer stops routing the moment draining starts.
func (a *API) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if a.health != nil {
		if ok, detail := a.health.Ready(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready:", detail)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// statsPayload is the JSON shape of /stats.
type statsPayload struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`

	Order       uint   `json:"order"`
	Vectors     int    `json:"vectors"`
	Hashes      int    `json:"hashes"`
	RotateNs    int64  `json:"rotateEveryNs"`
	ExpiryNs    int64  `json:"expiryTimerNs"`
	MemoryBytes uint64 `json:"memoryBytes"`

	Rotations    uint64 `json:"rotations"`
	CurrentIndex int    `json:"currentIndex"`
	Marks        uint64 `json:"marks"`

	Utilization       float64   `json:"utilization"`
	VectorUtilization []float64 `json:"vectorUtilization"`
	Penetration       float64   `json:"penetrationProbability"`

	OutPackets uint64 `json:"outPackets"`
	InPackets  uint64 `json:"inPackets"`
	InPassed   uint64 `json:"inPassed"`
	InDropped  uint64 `json:"inDropped"`
	APDSpared  uint64 `json:"apdSpared"`

	APDEnabled         bool    `json:"apdEnabled"`
	APDPolicy          string  `json:"apdPolicy,omitempty"`
	APDDropProbability float64 `json:"apdDropProbability"`

	// Shards holds per-shard breakdowns for sharded filters (absent
	// otherwise). Top-level fields are then cross-shard aggregates.
	Shards []shardPayload `json:"shards,omitempty"`

	// Tenants holds per-tenant breakdowns for multi-tenant sets (absent
	// otherwise). Top-level fields are then cross-tenant aggregates,
	// and UnroutedPackets counts the pass-through traffic no tenant
	// prefix claimed.
	Tenants         []tenantPayload `json:"tenants,omitempty"`
	UnroutedPackets uint64          `json:"unroutedPackets,omitempty"`

	// Checkpoint reports the durability subsystem (absent when the
	// daemon runs without -checkpoint).
	Checkpoint *checkpointPayload `json:"checkpoint,omitempty"`
}

// checkpointPayload is the /stats slice of the checkpoint subsystem.
type checkpointPayload struct {
	RestoreOutcome        string  `json:"restoreOutcome"`
	RestoredFrom          string  `json:"restoredFrom,omitempty"`
	IntervalNs            int64   `json:"intervalNs"`
	Attempts              uint64  `json:"attempts"`
	Successes             uint64  `json:"successes"`
	Failures              uint64  `json:"failures"`
	LastSuccessAgeSeconds float64 `json:"lastSuccessAgeSeconds"` // -1 before the first success
	LastBytes             int64   `json:"lastBytes"`
	LastError             string  `json:"lastError,omitempty"`
}

// shardPayload is the per-shard slice of /stats for sharded filters.
type shardPayload struct {
	Utilization        float64 `json:"utilization"`
	APDDropProbability float64 `json:"apdDropProbability"`
	APDSpared          uint64  `json:"apdSpared"`
	InPackets          uint64  `json:"inPackets"`
	InDropped          uint64  `json:"inDropped"`
}

// tenantPayload is the per-tenant slice of /stats for multi-tenant sets:
// the identity plus the same introspection a single filter reports.
type tenantPayload struct {
	ID     string `json:"id"`
	Prefix string `json:"prefix"`

	Order       uint   `json:"order"`
	Vectors     int    `json:"vectors"`
	Hashes      int    `json:"hashes"`
	MemoryBytes uint64 `json:"memoryBytes"`
	Rotations   uint64 `json:"rotations"`
	Marks       uint64 `json:"marks"`

	Utilization float64 `json:"utilization"`
	Penetration float64 `json:"penetrationProbability"`

	OutPackets uint64 `json:"outPackets"`
	InPackets  uint64 `json:"inPackets"`
	InPassed   uint64 `json:"inPassed"`
	InDropped  uint64 `json:"inDropped"`

	APDEnabled         bool    `json:"apdEnabled"`
	APDPolicy          string  `json:"apdPolicy,omitempty"`
	APDDropProbability float64 `json:"apdDropProbability"`
	APDSpared          uint64  `json:"apdSpared"`
}

// tenantStats returns per-tenant snapshots when the filter exposes them,
// nil otherwise.
func (a *API) tenantStats() ([]tenant.Stat, uint64) {
	if ts, ok := a.filter.(TenantStatser); ok {
		return ts.TenantStats(), ts.UnroutedPackets()
	}
	return nil, 0
}

// shardStats returns per-shard snapshots when the filter exposes them,
// nil otherwise.
func (a *API) shardStats() []core.Stats {
	if ss, ok := a.filter.(ShardStatser); ok {
		return ss.ShardStats()
	}
	return nil
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	s := a.filter.Stats()
	payload := statsPayload{
		UptimeSeconds:      time.Since(a.start).Seconds(),
		Order:              s.Order,
		Vectors:            s.Vectors,
		Hashes:             s.Hashes,
		RotateNs:           int64(s.RotateEvery),
		ExpiryNs:           int64(s.ExpiryTimer),
		MemoryBytes:        s.MemoryBytes,
		Rotations:          s.Rotations,
		CurrentIndex:       s.CurrentIndex,
		Marks:              s.Marks,
		Utilization:        s.Utilization,
		VectorUtilization:  s.VectorUtilization,
		Penetration:        s.PenetrationProbability,
		OutPackets:         s.Counters.OutPackets,
		InPackets:          s.Counters.InPackets,
		InPassed:           s.Counters.InPassed,
		InDropped:          s.Counters.InDropped,
		APDSpared:          s.APDSpared,
		APDEnabled:         s.APDEnabled,
		APDPolicy:          s.APDPolicy,
		APDDropProbability: s.APDDropProbability,
	}
	for _, st := range a.shardStats() {
		payload.Shards = append(payload.Shards, shardPayload{
			Utilization:        st.Utilization,
			APDDropProbability: st.APDDropProbability,
			APDSpared:          st.APDSpared,
			InPackets:          st.Counters.InPackets,
			InDropped:          st.Counters.InDropped,
		})
	}
	if tenants, unrouted := a.tenantStats(); len(tenants) > 0 {
		payload.UnroutedPackets = unrouted
		for _, ts := range tenants {
			payload.Tenants = append(payload.Tenants, tenantPayload{
				ID:                 ts.ID,
				Prefix:             ts.Prefix.String(),
				Order:              ts.Stats.Order,
				Vectors:            ts.Stats.Vectors,
				Hashes:             ts.Stats.Hashes,
				MemoryBytes:        ts.Stats.MemoryBytes,
				Rotations:          ts.Stats.Rotations,
				Marks:              ts.Stats.Marks,
				Utilization:        ts.Stats.Utilization,
				Penetration:        ts.Stats.PenetrationProbability,
				OutPackets:         ts.Stats.Counters.OutPackets,
				InPackets:          ts.Stats.Counters.InPackets,
				InPassed:           ts.Stats.Counters.InPassed,
				InDropped:          ts.Stats.Counters.InDropped,
				APDEnabled:         ts.Stats.APDEnabled,
				APDPolicy:          ts.Stats.APDPolicy,
				APDDropProbability: ts.Stats.APDDropProbability,
				APDSpared:          ts.Stats.APDSpared,
			})
		}
	}
	if a.checkpoints != nil {
		cs := a.checkpoints.Stats()
		age := -1.0
		if !cs.LastSuccess.IsZero() {
			age = time.Since(cs.LastSuccess).Seconds()
		}
		payload.Checkpoint = &checkpointPayload{
			RestoreOutcome:        a.restore.Outcome.String(),
			RestoredFrom:          a.restore.File,
			IntervalNs:            int64(cs.Interval),
			Attempts:              cs.Attempts,
			Successes:             cs.Successes,
			Failures:              cs.Failures,
			LastSuccessAgeSeconds: age,
			LastBytes:             cs.LastBytes,
			LastError:             cs.LastError,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		// Too late for a status change; the connection likely broke.
		return
	}
}

func (a *API) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s := a.filter.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	gauge := func(name string, v float64, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name string, v uint64, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("bitmapfilter_utilization", s.Utilization,
		"Fill fraction of the current bit vector (U)")
	// Per-vector fill fractions: O(1) reads of each vector's running
	// popcount, so scraping them is free at any order n.
	fmt.Fprintf(&b, "# HELP bitmapfilter_vector_utilization Fill fraction of each bit vector\n"+
		"# TYPE bitmapfilter_vector_utilization gauge\n")
	for i, u := range s.VectorUtilization {
		fmt.Fprintf(&b, "bitmapfilter_vector_utilization{vector=\"%d\"} %g\n", i, u)
	}
	gauge("bitmapfilter_current_vector_index", float64(s.CurrentIndex),
		"Index of the vector incoming lookups consult")
	gauge("bitmapfilter_penetration_probability", s.PenetrationProbability,
		"Random-packet penetration probability U^m (Equation 1)")
	gauge("bitmapfilter_memory_bytes", float64(s.MemoryBytes),
		"Fixed bitmap footprint (k*2^n)/8")
	counter("bitmapfilter_rotations_total", s.Rotations,
		"b.rotate invocations")
	counter("bitmapfilter_marks_total", s.Marks,
		"Outgoing packets that marked the bitmap")
	counter("bitmapfilter_out_packets_total", s.Counters.OutPackets,
		"Outgoing packets observed")
	counter("bitmapfilter_in_packets_total", s.Counters.InPackets,
		"Incoming packets observed")
	counter("bitmapfilter_in_dropped_total", s.Counters.InDropped,
		"Incoming packets dropped")
	counter("bitmapfilter_apd_spared_total", s.APDSpared,
		"Unmatched incoming packets admitted by APD")
	apdEnabled := 0.0
	if s.APDEnabled {
		apdEnabled = 1
	}
	gauge("bitmapfilter_apd_enabled", apdEnabled,
		"Whether an adaptive-packet-dropping policy is attached (§5.3)")
	gauge("bitmapfilter_apd_drop_probability", s.APDDropProbability,
		"Drop probability for unmatched incoming packets; mean across shards on a sharded filter")
	if per := a.shardStats(); len(per) > 0 {
		shardGauge := func(name, help string, v func(core.Stats) float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for i, st := range per {
				fmt.Fprintf(&b, "%s{shard=\"%d\"} %g\n", name, i, v(st))
			}
		}
		shardGauge("bitmapfilter_shard_apd_drop_probability",
			"Per-shard APD drop probability (the shard's clone of the policy)",
			func(st core.Stats) float64 { return st.APDDropProbability })
		shardGauge("bitmapfilter_shard_utilization",
			"Per-shard current-vector fill fraction",
			func(st core.Stats) float64 { return st.Utilization })
		fmt.Fprintf(&b, "# HELP bitmapfilter_shard_apd_spared_total Per-shard unmatched incoming packets admitted by APD\n"+
			"# TYPE bitmapfilter_shard_apd_spared_total counter\n")
		for i, st := range per {
			fmt.Fprintf(&b, "bitmapfilter_shard_apd_spared_total{shard=\"%d\"} %d\n", i, st.APDSpared)
		}
	}
	if tenants, unrouted := a.tenantStats(); len(tenants) > 0 {
		tenantGauge := func(name, help string, v func(tenant.Stat) float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, ts := range tenants {
				fmt.Fprintf(&b, "%s{tenant=%q} %g\n", name, ts.ID, v(ts))
			}
		}
		tenantCounter := func(name, help string, v func(tenant.Stat) uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, ts := range tenants {
				fmt.Fprintf(&b, "%s{tenant=%q} %d\n", name, ts.ID, v(ts))
			}
		}
		tenantGauge("bitmapfilter_tenant_utilization",
			"Per-tenant current-vector fill fraction",
			func(ts tenant.Stat) float64 { return ts.Stats.Utilization })
		tenantGauge("bitmapfilter_tenant_penetration_probability",
			"Per-tenant random-packet penetration probability U^m",
			func(ts tenant.Stat) float64 { return ts.Stats.PenetrationProbability })
		tenantGauge("bitmapfilter_tenant_memory_bytes",
			"Per-tenant bitmap footprint (changes when the budget rebalances)",
			func(ts tenant.Stat) float64 { return float64(ts.Stats.MemoryBytes) })
		tenantGauge("bitmapfilter_tenant_order",
			"Per-tenant bitmap order n (vector size 2^n bits)",
			func(ts tenant.Stat) float64 { return float64(ts.Stats.Order) })
		tenantGauge("bitmapfilter_tenant_apd_drop_probability",
			"Per-tenant APD drop probability for unmatched incoming packets",
			func(ts tenant.Stat) float64 { return ts.Stats.APDDropProbability })
		tenantCounter("bitmapfilter_tenant_out_packets_total",
			"Per-tenant outgoing packets observed",
			func(ts tenant.Stat) uint64 { return ts.Stats.Counters.OutPackets })
		tenantCounter("bitmapfilter_tenant_in_packets_total",
			"Per-tenant incoming packets observed",
			func(ts tenant.Stat) uint64 { return ts.Stats.Counters.InPackets })
		tenantCounter("bitmapfilter_tenant_in_dropped_total",
			"Per-tenant incoming packets dropped",
			func(ts tenant.Stat) uint64 { return ts.Stats.Counters.InDropped })
		tenantCounter("bitmapfilter_tenant_apd_spared_total",
			"Per-tenant unmatched incoming packets admitted by APD",
			func(ts tenant.Stat) uint64 { return ts.Stats.APDSpared })
		counter("bitmapfilter_unrouted_packets_total", unrouted,
			"Packets passed through unfiltered because no tenant prefix matched")
	}
	if a.health != nil {
		live, _ := a.health.Live()
		ready, _ := a.health.Ready()
		bool01 := func(v bool) float64 {
			if v {
				return 1
			}
			return 0
		}
		gauge("bitmapfilter_resilience_live", bool01(live),
			"Whether every supervised loop is making progress")
		gauge("bitmapfilter_resilience_ready", bool01(ready),
			"Whether the daemon should receive new traffic")
		fmt.Fprintf(&b, "# HELP bitmapfilter_resilience_state Daemon lifecycle state (one-hot)\n"+
			"# TYPE bitmapfilter_resilience_state gauge\n")
		for _, st := range []resilience.State{
			resilience.StateStarting, resilience.StateReady, resilience.StateDraining,
		} {
			fmt.Fprintf(&b, "bitmapfilter_resilience_state{state=%q} %g\n",
				st, bool01(a.health.State() == st))
		}
		if wd := a.health.Watchdog(); wd != nil {
			probes := wd.Status()
			fmt.Fprintf(&b, "# HELP bitmapfilter_resilience_probe_beats_total Loop iterations recorded by each watchdog probe\n"+
				"# TYPE bitmapfilter_resilience_probe_beats_total counter\n")
			for _, p := range probes {
				fmt.Fprintf(&b, "bitmapfilter_resilience_probe_beats_total{probe=%q} %d\n", p.Name, p.Beats)
			}
			fmt.Fprintf(&b, "# HELP bitmapfilter_resilience_probe_age_seconds Seconds since each probe last made progress\n"+
				"# TYPE bitmapfilter_resilience_probe_age_seconds gauge\n")
			for _, p := range probes {
				fmt.Fprintf(&b, "bitmapfilter_resilience_probe_age_seconds{probe=%q} %g\n", p.Name, p.Age.Seconds())
			}
			fmt.Fprintf(&b, "# HELP bitmapfilter_resilience_probe_stalled Whether each probe exceeded its stall threshold\n"+
				"# TYPE bitmapfilter_resilience_probe_stalled gauge\n")
			for _, p := range probes {
				fmt.Fprintf(&b, "bitmapfilter_resilience_probe_stalled{probe=%q} %g\n", p.Name, bool01(p.Stalled))
			}
		}
	}
	cpEnabled := 0.0
	if a.checkpoints != nil {
		cpEnabled = 1
	}
	gauge("bitmapfilter_checkpoint_enabled", cpEnabled,
		"Whether crash-safe checkpointing is configured")
	if a.checkpoints != nil {
		cs := a.checkpoints.Stats()
		age := -1.0
		if !cs.LastSuccess.IsZero() {
			age = time.Since(cs.LastSuccess).Seconds()
		}
		gauge("bitmapfilter_checkpoint_last_success_age_seconds", age,
			"Seconds since the newest completed checkpoint (-1 before the first)")
		gauge("bitmapfilter_checkpoint_last_size_bytes", float64(cs.LastBytes),
			"Size of the newest completed checkpoint")
		counter("bitmapfilter_checkpoint_attempts_total", cs.Attempts,
			"Checkpoint save attempts, including retries")
		counter("bitmapfilter_checkpoint_success_total", cs.Successes,
			"Completed checkpoints")
		counter("bitmapfilter_checkpoint_failures_total", cs.Failures,
			"Failed checkpoint save attempts")
		fmt.Fprintf(&b, "# HELP bitmapfilter_checkpoint_restore_outcome Which restore-ladder rung produced the running state (one-hot)\n"+
			"# TYPE bitmapfilter_checkpoint_restore_outcome gauge\n")
		for _, o := range []checkpoint.Outcome{
			checkpoint.OutcomePrimary, checkpoint.OutcomeBackup,
			checkpoint.OutcomeColdStartEmpty, checkpoint.OutcomeColdStartCorrupt,
		} {
			v := 0
			if a.restore.Outcome == o {
				v = 1
			}
			fmt.Fprintf(&b, "bitmapfilter_checkpoint_restore_outcome{outcome=%q} %d\n", o, v)
		}
	}
	_, _ = w.Write([]byte(b.String()))
}

// handleCheckpoint persists a snapshot immediately (operator-triggered,
// e.g. ahead of a planned restart).
func (a *API) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if err := a.checkpoints.CheckpointNow(); err != nil {
		http.Error(w, "checkpoint failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	cs := a.checkpoints.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "checkpointed %d bytes\n", cs.LastBytes)
}

// handlePunch implements operator-driven §5.1 hole punching.
func (a *API) handlePunch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	local, err := parseAddr(q.Get("local"))
	if err != nil {
		http.Error(w, "local: "+err.Error(), http.StatusBadRequest)
		return
	}
	remote, err := parseAddr(q.Get("remote"))
	if err != nil {
		http.Error(w, "remote: "+err.Error(), http.StatusBadRequest)
		return
	}
	port, err := strconv.ParseUint(q.Get("port"), 10, 16)
	if err != nil || port == 0 {
		http.Error(w, "port: must be 1..65535", http.StatusBadRequest)
		return
	}
	proto := packet.TCP
	switch strings.ToLower(q.Get("proto")) {
	case "", "tcp":
	case "udp":
		proto = packet.UDP
	default:
		http.Error(w, "proto: must be tcp or udp", http.StatusBadRequest)
		return
	}
	a.filter.PunchHole(local, uint16(port), remote, proto)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "punched %s:%d <- %s/%s\n", local, port, remote, proto)
}

// parseAddr parses a dotted-quad IPv4 address.
func parseAddr(s string) (packet.Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("%q is not a dotted-quad IPv4 address", s)
	}
	var quad [4]byte
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("bad octet %q", p)
		}
		quad[i] = byte(v)
	}
	return packet.AddrFrom4(quad[0], quad[1], quad[2], quad[3]), nil
}
