package live

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// TestSnapshotPreservesClockOffset is the warm-restart property: the
// adapter back-dates its start time so the filter clock resumes exactly
// where the snapshot left it, and downtime neither ages nor extends the
// marks.
func TestSnapshotPreservesClockOffset(t *testing.T) {
	clock := newFakeClock()
	l := newLive(t, clock) // Δt = 5s, T_e = 20s

	l.Observe(tuple, packet.Outgoing, packet.SYN, 60)
	clock.Advance(3 * time.Second)

	var buf bytes.Buffer
	if err := l.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if got := l.Stats().Now; got != 3*time.Second {
		t.Fatalf("filter clock at snapshot = %v, want 3s", got)
	}

	// The daemon is down for 90s — far past T_e on the wall clock.
	clock.Advance(90 * time.Second)

	g, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), nil, WithClock(clock))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got := g.Stats().Now; got != 3*time.Second {
		t.Errorf("filter clock after restore = %v, want 3s (downtime must not age marks)", got)
	}
	// The 3s-old flow is still established from the filter's perspective.
	if v := g.Observe(tuple.Reverse(), packet.Incoming, packet.ACK, 60); v != filtering.Pass {
		t.Error("established flow dropped after warm restart")
	}
	// Expiry still runs on schedule relative to the resumed clock: after
	// another T_e of wall time the mark is gone.
	clock.Advance(25 * time.Second)
	if v := g.Observe(tuple.Reverse(), packet.Incoming, packet.ACK, 60); v != filtering.Drop {
		t.Error("mark survived past T_e after restore")
	}
}

func TestSnapshotRoundTripThroughLive(t *testing.T) {
	clock := newFakeClock()
	l := newLive(t, clock)
	for i := 0; i < 100; i++ {
		tup := packet.Tuple{Src: client, Dst: server,
			SrcPort: uint16(2000 + i), DstPort: 80, Proto: packet.TCP}
		l.Observe(tup, packet.Outgoing, packet.SYN, 60)
	}
	before := l.Counters()

	var buf bytes.Buffer
	if err := l.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadSnapshot(&buf, nil, WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if g.Counters() != before {
		t.Errorf("counters after restore %+v, want %+v", g.Counters(), before)
	}
	for i := 0; i < 100; i++ {
		tup := packet.Tuple{Src: server, Dst: client,
			SrcPort: 80, DstPort: uint16(2000 + i), Proto: packet.TCP}
		if v := g.Observe(tup, packet.Incoming, packet.ACK, 60); v != filtering.Pass {
			t.Fatalf("restored live filter dropped reply %d", i)
		}
	}
}

// TestSnapshotShardedFlavor: a live adapter over a sharded filter
// restores as a sharded filter (ShardStats stays available).
func TestSnapshotShardedFlavor(t *testing.T) {
	clock := newFakeClock()
	inner, err := core.NewSharded(4,
		core.WithOrder(10), core.WithVectors(2), core.WithHashes(2),
		core.WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(inner, WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	l.Observe(tuple, packet.Outgoing, packet.SYN, 60)

	var buf bytes.Buffer
	if err := l.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadSnapshot(&buf, nil, WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if ss := g.ShardStats(); len(ss) != 4 {
		t.Errorf("restored filter has %d shard stats, want 4", len(ss))
	}
	if v := g.Observe(tuple.Reverse(), packet.Incoming, packet.ACK, 60); v != filtering.Pass {
		t.Error("sharded restore lost the flow")
	}
}

// noSnap satisfies Inner but not the snapshot surface.
type noSnap struct{ Inner }

func TestWriteSnapshotNotSnapshottable(t *testing.T) {
	l, err := New(noSnap{Inner: core.MustNew(core.WithOrder(10), core.WithVectors(2),
		core.WithHashes(2), core.WithRotateEvery(time.Second))})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(&bytes.Buffer{}); !errors.Is(err, ErrNotSnapshottable) {
		t.Errorf("error = %v, want ErrNotSnapshottable", err)
	}
}

func TestReadSnapshotGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot")), nil); err == nil {
		t.Error("garbage accepted")
	}
}
