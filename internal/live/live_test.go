package live

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// fakeClock is a manually advanced Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

var (
	client = packet.AddrFrom4(10, 0, 0, 1)
	server = packet.AddrFrom4(198, 51, 100, 7)
	tuple  = packet.Tuple{Src: client, Dst: server, SrcPort: 4000, DstPort: 80, Proto: packet.TCP}
)

func newLive(t *testing.T, clock Clock) *Filter {
	t.Helper()
	inner := core.MustNew(
		core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second))
	l, err := New(inner, WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewNilFilter(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNilFilter) {
		t.Errorf("error = %v", err)
	}
}

func TestObserveStampsWallClock(t *testing.T) {
	clock := newFakeClock()
	l := newLive(t, clock)

	if v := l.Observe(tuple, packet.Outgoing, packet.SYN, 60); v != filtering.Pass {
		t.Fatal("outgoing dropped")
	}
	clock.Advance(time.Second)
	if v := l.Observe(tuple.Reverse(), packet.Incoming, packet.ACK, 60); v != filtering.Pass {
		t.Error("reply dropped")
	}
	// Marks expire after wall-clock T_e = 20 s.
	clock.Advance(25 * time.Second)
	if v := l.Observe(tuple.Reverse(), packet.Incoming, packet.ACK, 60); v != filtering.Drop {
		t.Error("mark survived wall-clock T_e")
	}
	c := l.Counters()
	if c.OutPackets != 1 || c.InPackets != 2 || c.InDropped != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPunchHoleAndUtilization(t *testing.T) {
	clock := newFakeClock()
	l := newLive(t, clock)
	if l.Utilization() != 0 {
		t.Error("fresh filter has utilization")
	}
	l.PunchHole(client, 2000, server, packet.TCP)
	if l.Utilization() == 0 {
		t.Error("hole punch did not mark")
	}
	hole := packet.Tuple{Src: server, Dst: client, SrcPort: 20, DstPort: 2000, Proto: packet.TCP}
	if v := l.Observe(hole, packet.Incoming, packet.SYN, 60); v != filtering.Pass {
		t.Error("punched connection dropped")
	}
	// Utilization decays to zero after rotations even without traffic.
	clock.Advance(time.Minute)
	if l.Utilization() != 0 {
		t.Error("stale marks not rotated out on query")
	}
}

func TestConcurrentObserve(t *testing.T) {
	clock := newFakeClock()
	l := newLive(t, clock)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tup := tuple
			tup.SrcPort = uint16(4000 + w)
			for i := 0; i < 1000; i++ {
				l.Observe(tup, packet.Outgoing, packet.ACK, 60)
				l.Observe(tup.Reverse(), packet.Incoming, packet.ACK, 60)
			}
		}(w)
	}
	wg.Wait()
	c := l.Counters()
	if c.OutPackets != 8000 || c.InPackets != 8000 {
		t.Errorf("counters = %+v", c)
	}
	if c.InDropped != 0 {
		t.Errorf("dropped %d matched replies", c.InDropped)
	}
}

func TestBackgroundRotations(t *testing.T) {
	// Use the real clock with a tiny rotation period: the background
	// ticker must expire marks without any Observe traffic.
	inner := core.MustNew(
		core.WithOrder(12), core.WithVectors(2), core.WithHashes(3),
		core.WithRotateEvery(10*time.Millisecond))
	l, err := New(inner)
	if err != nil {
		t.Fatal(err)
	}
	l.Observe(tuple, packet.Outgoing, packet.ACK, 60)
	if err := l.StartRotations(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer l.StopRotations()
	if err := l.StartRotations(time.Millisecond); err == nil {
		t.Error("double StartRotations accepted")
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if l.Utilization() == 0 {
			return // marks rotated out by the background ticker
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("background rotations never expired the marks")
}

func TestStopRotationsIdempotent(t *testing.T) {
	l := newLive(t, newFakeClock())
	l.StopRotations() // not running: no-op
	if err := l.StartRotations(0); err != nil {
		t.Fatal(err)
	}
	l.StopRotations()
	l.StopRotations() // double stop: no-op
	// Can restart after stop.
	if err := l.StartRotations(time.Millisecond); err != nil {
		t.Errorf("restart failed: %v", err)
	}
	l.StopRotations()
}
