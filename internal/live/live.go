// Package live adapts the virtual-time bitmap filter to wall-clock packet
// sources: it stamps each observed tuple with the elapsed monotonic time
// since construction, serializes access for concurrent capture threads,
// and (optionally) runs a background ticker so rotations fire even while
// the link is quiet.
//
// This is the deployment-facing shim: everything under internal/core is
// timestamp-driven and deterministic for simulation; a router integration
// simply calls Observe for every packet it forwards.
package live

import (
	"errors"
	"io"
	"sync"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/tenant"
)

// ErrNilFilter is returned by New when no filter is supplied.
var ErrNilFilter = errors.New("live: nil filter")

// Inner is the filter surface the adapter drives: the batched data plane
// plus the introspection and control hooks the daemon endpoints need.
// *core.Filter, *core.Safe and *core.Sharded all satisfy it, so a
// wall-clock deployment picks its concurrency flavor (including
// sharded+APD) without changing the adapter.
type Inner interface {
	filtering.BatchFilter
	PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto)
	Stats() core.Stats
	Utilization() float64
	RotateEvery() time.Duration
}

// shardStatser is the optional per-shard introspection surface
// (*core.Sharded); see Filter.ShardStats.
type shardStatser interface {
	ShardStats() []core.Stats
}

// Clock abstracts wall time so tests can drive the adapter
// deterministically. It is an alias of core.Clock so the unified builder's
// WithLiveClock option and this package's WithClock accept the same
// implementations.
type Clock = core.Clock

// realClock is the default Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Option configures the adapter.
type Option interface {
	apply(*Filter)
}

type clockOption struct{ c Clock }

func (o clockOption) apply(f *Filter) { f.clock = o.c }

// WithClock substitutes the time source (tests, replay).
func WithClock(c Clock) Option { return clockOption{c: c} }

// Filter is a goroutine-safe, wall-clock-driven bitmap filter.
type Filter struct {
	mu    sync.Mutex
	inner Inner //bf:guardedby mu
	clock Clock
	start time.Time
	//bf:guardedby mu
	ticker struct {
		stop chan struct{}
		done chan struct{}
	}
}

// New wraps a core filter flavor (see Inner). The wrapped filter must not
// be used directly afterwards.
func New(f Inner, opts ...Option) (*Filter, error) {
	if f == nil {
		return nil, ErrNilFilter
	}
	l := &Filter{inner: f, clock: realClock{}}
	for _, o := range opts {
		o.apply(l)
	}
	l.start = l.clock.Now()
	return l, nil
}

// Adopt wraps a filter that already carries state — its rotation clock
// stands at some non-zero virtual time — and back-dates the adapter's
// start so the wall clock resumes exactly where the filter clock left
// off. Restores (ReadSnapshot, the tenant fleet restore in bfserve) use
// it so downtime neither ages nor extends marks; for a fresh filter it is
// identical to New.
func Adopt(f Inner, opts ...Option) (*Filter, error) {
	l, err := New(f, opts...)
	if err != nil {
		return nil, err
	}
	l.start = l.clock.Now().Add(-f.Stats().Now)
	return l, nil
}

// elapsed returns the filter-clock timestamp for "now".
func (l *Filter) elapsed() time.Duration {
	return l.clock.Now().Sub(l.start)
}

// Observe runs one packet (described by its tuple, direction, TCP flags
// and length) through the filter at the current wall-clock time and
// returns the verdict.
//
//bf:hotpath
func (l *Filter) Observe(tup packet.Tuple, dir packet.Direction, flags packet.Flags, length int) filtering.Verdict {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Process(packet.Packet{
		Time:   l.elapsed(),
		Tuple:  tup,
		Dir:    dir,
		Flags:  flags,
		Length: length,
	})
}

// ObserveBatch stamps every packet in pkts with the current wall-clock
// elapsed time — overwriting any Time already set — and runs them through
// the filter in order under a single lock acquisition and a single clock
// read. It returns one verdict per packet. This is the hot path for packet
// sources that deliver bursts (NIC rings, pcap buffers): per-packet lock
// and clock overhead is paid once per batch.
func (l *Filter) ObserveBatch(pkts []packet.Packet) []filtering.Verdict {
	if len(pkts) == 0 {
		return nil
	}
	return l.ObserveBatchInto(pkts, nil)
}

// ObserveBatchInto is ObserveBatch writing into a caller-provided buffer
// under the filtering.BatchFilter ProcessBatchInto contract: out's backing
// array is reused when cap(out) >= len(pkts) and grown otherwise, so a
// packet pump that recycles its packet and verdict buffers runs the whole
// wire-to-verdict path without allocating.
//
//bf:hotpath
func (l *Filter) ObserveBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	out = filtering.GrowVerdicts(out, len(pkts)) //bf:allow escapecheck amortized grow per the BatchFilter contract; steady state reuses the caller buffer
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.elapsed()
	for i := range pkts {
		pkts[i].Time = now
	}
	return l.inner.ProcessBatchInto(pkts, out)
}

// The adapter is itself a filtering.BatchFilter, so wall-clock
// deployments compose with everything that speaks the batch contract
// (Chain stages, benchmarks, the replay drivers). The wall clock stays
// authoritative: the Process* methods stamp packets with the elapsed
// monotonic time exactly like Observe*, overwriting any Time already set,
// and AdvanceTo ignores the caller's timestamp in favor of "now".
var _ filtering.BatchFilter = (*Filter)(nil)

// Process implements filtering.PacketFilter: it is Observe for a packet
// already materialized as a packet.Packet. pkt.Time is overwritten with
// the current wall-clock elapsed time.
//
//bf:hotpath
func (l *Filter) Process(pkt packet.Packet) filtering.Verdict {
	return l.Observe(pkt.Tuple, pkt.Dir, pkt.Flags, pkt.Length)
}

// ProcessBatch implements filtering.BatchFilter; it is ObserveBatch (all
// packet timestamps are overwritten with "now").
func (l *Filter) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	return l.ObserveBatch(pkts)
}

// ProcessBatchInto implements filtering.BatchFilter; it is
// ObserveBatchInto (all packet timestamps are overwritten with "now").
//
//bf:hotpath
func (l *Filter) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	return l.ObserveBatchInto(pkts, out)
}

// AdvanceTo implements filtering.PacketFilter. The wall clock is
// authoritative for a live filter, so the argument is ignored and the
// wrapped filter advances to the current elapsed time — the same firing
// StartRotations performs on its ticks.
func (l *Filter) AdvanceTo(time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.AdvanceTo(l.elapsed())
}

// MemoryBytes forwards to the wrapped filter under the lock.
func (l *Filter) MemoryBytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.MemoryBytes()
}

// RotateEvery returns the wrapped filter's rotation period.
func (l *Filter) RotateEvery() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.RotateEvery()
}

// Name forwards to the wrapped filter under the lock.
func (l *Filter) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Name()
}

// PunchHole forwards to the wrapped filter under the lock (§5.1).
func (l *Filter) PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.PunchHole(local, localPort, remote, proto)
}

// Utilization returns the current-vector utilization at wall-clock time
// (rotations due up to now fire first).
func (l *Filter) Utilization() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.AdvanceTo(l.elapsed())
	return l.inner.Utilization()
}

// Counters returns cumulative packet counters.
func (l *Filter) Counters() filtering.Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Counters()
}

// Stats returns a full introspection snapshot at wall-clock time
// (rotations due up to now fire first). For a sharded inner filter this
// is the cross-shard aggregate.
func (l *Filter) Stats() core.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.AdvanceTo(l.elapsed())
	return l.inner.Stats()
}

// ShardStats returns per-shard snapshots at wall-clock time when the
// wrapped filter is sharded, and nil otherwise.
func (l *Filter) ShardStats() []core.Stats {
	ss, ok := l.inner.(shardStatser)
	if !ok {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.AdvanceTo(l.elapsed())
	return ss.ShardStats()
}

// tenantStatser is the optional per-tenant introspection surface
// (*tenant.Set); see Filter.TenantStats.
type tenantStatser interface {
	TenantStats() []tenant.Stat
	UnroutedPackets() uint64
}

// TenantStats returns per-tenant snapshots at wall-clock time when the
// wrapped filter is a multi-tenant set, and nil otherwise.
func (l *Filter) TenantStats() []tenant.Stat {
	ts, ok := l.inner.(tenantStatser)
	if !ok {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.AdvanceTo(l.elapsed())
	return ts.TenantStats()
}

// UnroutedPackets reports the wrapped tenant set's pass-through count,
// or 0 for any other inner filter.
func (l *Filter) UnroutedPackets() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ts, ok := l.inner.(tenantStatser); ok {
		return ts.UnroutedPackets()
	}
	return 0
}

// rebalancer is the optional budget surface (*tenant.Set).
type rebalancer interface {
	Rebalance(now time.Duration) (int, error)
}

// ErrNoRebalance is returned by Rebalance when the wrapped filter is not
// a budgeted tenant set.
var ErrNoRebalance = errors.New("live: wrapped filter has no budget to rebalance")

// Rebalance re-plans a wrapped tenant set's shared memory budget at the
// current wall-clock instant (see tenant.Set.Rebalance). The adapter
// lock is held: the resize swap and the dispatch path never interleave.
func (l *Filter) Rebalance() (int, error) {
	rb, ok := l.inner.(rebalancer)
	if !ok {
		return 0, ErrNoRebalance
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return rb.Rebalance(l.elapsed())
}

// ErrNotSnapshottable is returned by WriteSnapshot when the wrapped
// filter does not support snapshot serialization.
var ErrNotSnapshottable = errors.New("live: wrapped filter cannot write snapshots")

// snapshotter is the optional snapshot surface of the wrapped filter;
// every core flavor (Filter, Safe, Sharded) implements it.
type snapshotter interface {
	WriteSnapshot(w io.Writer) error
}

// WriteSnapshot quiesces the filter (the adapter lock is held for the
// whole write, so no packet lands mid-stream), advances the rotation
// clock to "now" and serializes the wrapped filter's state. The snapshot
// records the filter clock — the elapsed monotonic time this adapter
// stamps on packets — so ReadSnapshot can rebuild the wall-clock→
// filter-clock offset on restore.
func (l *Filter) WriteSnapshot(w io.Writer) error {
	snap, ok := l.inner.(snapshotter)
	if !ok {
		return ErrNotSnapshottable
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.AdvanceTo(l.elapsed())
	return snap.WriteSnapshot(w)
}

// ReadSnapshot reconstructs a live filter from a stream written by
// WriteSnapshot (or by any core flavor's WriteSnapshot): the inner flavor
// is taken from the snapshot, coreOpts (e.g. core.WithAPD) are applied on
// top of the serialized configuration, and liveOpts configure the adapter
// itself. The adapter's start time is back-dated so the filter clock
// resumes exactly where the snapshot left it — marks keep their residual
// lifetime across the restart instead of being aged (or reset) by the
// downtime, which is the conservative choice for admitting established
// flows.
func ReadSnapshot(r io.Reader, coreOpts []core.Option, liveOpts ...Option) (*Filter, error) {
	inner, err := core.ReadAnySnapshot(r, coreOpts...)
	if err != nil {
		return nil, err
	}
	return Adopt(inner, liveOpts...)
}

// StartRotations launches a background goroutine that advances the filter
// clock every interval, so marks expire on schedule even when no packets
// arrive. It returns an error if rotations are already running. Always
// pair with StopRotations.
func (l *Filter) StartRotations(interval time.Duration) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ticker.stop != nil {
		return errors.New("live: rotations already running")
	}
	if interval <= 0 {
		interval = l.inner.RotateEvery()
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	l.ticker.stop, l.ticker.done = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				l.mu.Lock()
				l.inner.AdvanceTo(l.elapsed())
				l.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
	return nil
}

// StopRotations stops the background ticker and waits for it to exit. It
// is a no-op if rotations are not running.
func (l *Filter) StopRotations() {
	l.mu.Lock()
	stop, done := l.ticker.stop, l.ticker.done
	l.ticker.stop, l.ticker.done = nil, nil
	l.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
