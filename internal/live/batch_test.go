package live

import (
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

func TestObserveBatchStampsAndFilters(t *testing.T) {
	clock := newFakeClock()
	l := newLive(t, clock)
	clock.Advance(3 * time.Second)

	pkts := []packet.Packet{
		{Tuple: tuple, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60},
		{Tuple: tuple.Reverse(), Dir: packet.Incoming, Flags: packet.ACK, Length: 60},
		{Tuple: packet.Tuple{Src: server, Dst: client, SrcPort: 1, DstPort: 2, Proto: packet.TCP},
			Dir: packet.Incoming, Flags: packet.ACK, Length: 60},
	}
	got := l.ObserveBatch(pkts)
	want := []filtering.Verdict{filtering.Pass, filtering.Pass, filtering.Drop}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("verdict[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Every packet is stamped with the batch's single wall-clock read.
	for i, p := range pkts {
		if p.Time != 3*time.Second {
			t.Errorf("pkts[%d].Time = %v, want 3s", i, p.Time)
		}
	}
	c := l.Counters()
	if c.OutPackets != 1 || c.InPackets != 2 || c.InPassed != 1 || c.InDropped != 1 {
		t.Errorf("counters = %+v", c)
	}

	// The batch stamp drives rotations like Observe does: after T_e the
	// mark is gone.
	clock.Advance(25 * time.Second)
	v := l.ObserveBatch([]packet.Packet{
		{Tuple: tuple.Reverse(), Dir: packet.Incoming, Flags: packet.ACK, Length: 60},
	})
	if v[0] != filtering.Drop {
		t.Error("mark survived wall-clock T_e through ObserveBatch")
	}

	if out := l.ObserveBatch(nil); out != nil {
		t.Errorf("ObserveBatch(nil) = %v", out)
	}
}

// TestObserveBatchIntoReusesBuffer pins the live adapter's corner of the
// ProcessBatchInto contract: dirty caller buffers are reused in place and
// fully overwritten, short ones grow.
func TestObserveBatchIntoReusesBuffer(t *testing.T) {
	clock := newFakeClock()
	l := newLive(t, clock)
	clock.Advance(time.Second)

	pkts := []packet.Packet{
		{Tuple: tuple, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60},
		{Tuple: tuple.Reverse(), Dir: packet.Incoming, Flags: packet.ACK, Length: 60},
		{Tuple: packet.Tuple{Src: server, Dst: client, SrcPort: 9, DstPort: 9, Proto: packet.TCP},
			Dir: packet.Incoming, Flags: packet.ACK, Length: 60},
	}
	want := []filtering.Verdict{filtering.Pass, filtering.Pass, filtering.Drop}

	dirty := make([]filtering.Verdict, len(pkts), len(pkts)+4)
	for i := range dirty {
		dirty[i] = filtering.Verdict(250)
	}
	got := l.ObserveBatchInto(pkts, dirty)
	if &got[0] != &dirty[0] {
		t.Error("buffer with sufficient cap not reused")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("verdict[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	if got := l.ObserveBatchInto(pkts, nil); len(got) != len(pkts) {
		t.Errorf("nil out: got %d verdicts", len(got))
	}
	if got := l.ObserveBatchInto(nil, dirty); len(got) != 0 {
		t.Errorf("empty batch: got %d verdicts", len(got))
	}
}

// TestObserveBatchMatchesObserve checks the batched wall-clock path agrees
// with per-packet Observe on a second, identically seeded filter.
func TestObserveBatchMatchesObserve(t *testing.T) {
	mk := func() (*Filter, *fakeClock) {
		clock := newFakeClock()
		inner := core.MustNew(
			core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
			core.WithRotateEvery(5*time.Second), core.WithSeed(21))
		l, err := New(inner, WithClock(clock))
		if err != nil {
			t.Fatal(err)
		}
		return l, clock
	}
	a, ca := mk()
	b, cb := mk()

	var batch []packet.Packet
	for step := 0; step < 200; step++ {
		tup := tuple
		tup.SrcPort = uint16(4000 + step%17)
		batch = batch[:0]
		for i := 0; i < 8; i++ {
			dir := packet.Outgoing
			tp := tup
			if i%2 == 1 {
				dir = packet.Incoming
				tp = tup.Reverse()
			}
			batch = append(batch, packet.Packet{Tuple: tp, Dir: dir, Flags: packet.ACK, Length: 60})
		}
		gotA := a.ObserveBatch(batch)
		for i, p := range batch {
			if want := b.Observe(p.Tuple, p.Dir, p.Flags, p.Length); gotA[i] != want {
				t.Fatalf("step %d verdict[%d] = %v, want %v", step, i, gotA[i], want)
			}
		}
		ca.Advance(300 * time.Millisecond)
		cb.Advance(300 * time.Millisecond)
	}
	if a.Counters() != b.Counters() {
		t.Errorf("counters diverged: %+v vs %+v", a.Counters(), b.Counters())
	}
}

// TestConcurrentObserveBatchStress races ObserveBatch against Observe,
// Stats, Utilization and background rotations. Meaningful under -race.
func TestConcurrentObserveBatchStress(t *testing.T) {
	inner := core.MustNew(
		core.WithOrder(12), core.WithVectors(2), core.WithHashes(3),
		core.WithRotateEvery(2*time.Millisecond))
	l, err := New(inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.StartRotations(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer l.StopRotations()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-goroutine batch: ObserveBatch rewrites Time in place,
			// so sharing one slice across goroutines would itself race.
			batch := make([]packet.Packet, 32)
			for i := range batch {
				tup := tuple
				tup.SrcPort = uint16(4000 + w*64 + i)
				batch[i] = packet.Packet{Tuple: tup, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60}
				if i%2 == 1 {
					batch[i].Tuple = tup.Reverse()
					batch[i].Dir = packet.Incoming
				}
			}
			for i := 0; i < 100; i++ {
				if got := l.ObserveBatch(batch); len(got) != len(batch) {
					t.Errorf("ObserveBatch returned %d verdicts", len(got))
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			l.Observe(tuple, packet.Outgoing, packet.ACK, 60)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			_ = l.Stats()
			_ = l.Utilization()
		}
	}()
	wg.Wait()

	c := l.Counters()
	if want := uint64(4*100*16 + 300); c.OutPackets != want {
		t.Errorf("OutPackets = %d, want %d", c.OutPackets, want)
	}
}
