package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"bitmapfilter/internal/packet"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}

	pkts := []packet.Packet{
		{
			Time: 1500 * time.Millisecond,
			Tuple: packet.Tuple{
				Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 1),
				SrcPort: 4000, DstPort: 80, Proto: packet.TCP,
			},
			Dir: packet.Outgoing, Flags: packet.SYN, Length: 60,
		},
		{
			Time: 2 * time.Second,
			Tuple: packet.Tuple{
				Src: packet.AddrFrom4(198, 51, 100, 1), Dst: packet.AddrFrom4(10, 0, 0, 1),
				SrcPort: 80, DstPort: 4000, Proto: packet.TCP,
			},
			Dir: packet.Incoming, Flags: packet.SYN | packet.ACK, Length: 60,
		},
		{
			Time: 3 * time.Second,
			Tuple: packet.Tuple{
				Src: packet.AddrFrom4(10, 0, 0, 2), Dst: packet.AddrFrom4(203, 0, 113, 3),
				SrcPort: 5353, DstPort: 53, Proto: packet.UDP,
			},
			Dir: packet.Outgoing, Length: 90,
		},
	}
	for _, p := range pkts {
		frame, err := packet.Encode(p)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if err := w.WriteRecord(Record{Time: p.Time, Data: frame}); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	if r.SnapLen() != DefaultSnapLen {
		t.Errorf("SnapLen = %d", r.SnapLen())
	}
	for i, want := range pkts {
		rec, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("ReadRecord[%d]: %v", i, err)
		}
		if rec.Time != want.Time {
			t.Errorf("record %d time = %v, want %v", i, rec.Time, want.Time)
		}
		dec, err := packet.Decode(rec.Data)
		if err != nil {
			t.Fatalf("Decode[%d]: %v", i, err)
		}
		if dec.Tuple != want.Tuple {
			t.Errorf("record %d tuple = %+v, want %+v", i, dec.Tuple, want.Tuple)
		}
		got := dec.ToPacket()
		if got.Dir != want.Dir {
			t.Errorf("record %d dir = %v, want %v", i, got.Dir, want.Dir)
		}
	}
	if _, err := r.ReadRecord(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.ReadRecord(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	data := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint16(data[4:6], 9)
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("want ErrBadVersion, got %v", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Error("truncated global header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(Record{Time: time.Second, Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	// Chop off half the payload.
	data := buf.Bytes()[:buf.Len()-50]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadRecord(); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestSnapLenEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(Record{Data: make([]byte, DefaultSnapLen+1)}); !errors.Is(err, ErrSnapLen) {
		t.Errorf("oversize record error = %v, want ErrSnapLen", err)
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian, microsecond pcap with one 4-byte record.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], 1)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 7)      // sec
	binary.BigEndian.PutUint32(rec[4:8], 250000) // usec
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := r.ReadRecord()
	if err != nil {
		t.Fatalf("ReadRecord: %v", err)
	}
	want := 7*time.Second + 250*time.Millisecond
	if got.Time != want {
		t.Errorf("time = %v, want %v", got.Time, want)
	}
	if !bytes.Equal(got.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("data = %v", got.Data)
	}
}

func TestNanosecondRead(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xa1b23c4d) // nanosecond magic
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], 1)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], 1)
	binary.LittleEndian.PutUint32(rec[4:8], 500) // 500 ns
	binary.LittleEndian.PutUint32(rec[8:12], 1)
	binary.LittleEndian.PutUint32(rec[12:16], 1)
	buf.Write(rec)
	buf.WriteByte(0xab)

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := r.ReadRecord()
	if err != nil {
		t.Fatalf("ReadRecord: %v", err)
	}
	if want := time.Second + 500*time.Nanosecond; got.Time != want {
		t.Errorf("time = %v, want %v", got.Time, want)
	}
}

func TestRecordClaimsMoreThanSnapLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	data := buf.Bytes()
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], DefaultSnapLen+10)
	data = append(data, rec...)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadRecord(); !errors.Is(err, ErrSnapLen) {
		t.Errorf("want ErrSnapLen, got %v", err)
	}
}

// TestOrigLenRoundTrip is the regression test for the dropped origLen:
// the old reader discarded scratch[12:16], so a snapLen-truncated capture
// lost the true wire length of every frame.
func TestOrigLenRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A frame captured whole, one truncated to 60 of 1500 bytes, and one
	// relying on the zero-means-len(Data) default.
	if err := w.WriteRecord(Record{Time: time.Second, Data: make([]byte, 80), OrigLen: 80}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(Record{Time: 2 * time.Second, Data: make([]byte, 60), OrigLen: 1500}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(Record{Time: 3 * time.Second, Data: make([]byte, 90)}); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		origLen   int
		truncated bool
	}{
		{80, false},
		{1500, true},
		{90, false},
	}
	for i, w := range want {
		rec, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("ReadRecord[%d]: %v", i, err)
		}
		if rec.OrigLen != w.origLen {
			t.Errorf("record %d OrigLen = %d, want %d", i, rec.OrigLen, w.origLen)
		}
		if rec.Truncated() != w.truncated {
			t.Errorf("record %d Truncated() = %v, want %v", i, rec.Truncated(), w.truncated)
		}
	}
}

// TestWriteRecordBadOrigLen: a record cannot claim fewer wire bytes than
// it carries.
func TestWriteRecordBadOrigLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	err = w.WriteRecord(Record{Time: time.Second, Data: make([]byte, 100), OrigLen: 99})
	if !errors.Is(err, ErrOrigLen) {
		t.Errorf("OrigLen < len(Data) error = %v, want ErrOrigLen", err)
	}
}

// TestWriteRecordTimestampRange is the regression test for the wrapping
// timestamp: negative offsets and seconds past 2^32-1 used to be cast
// straight through uint32() into plausible-looking garbage.
func TestWriteRecordTimestampRange(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4}

	if err := w.WriteRecord(Record{Time: -time.Microsecond, Data: data}); !errors.Is(err, ErrTimestamp) {
		t.Errorf("negative time error = %v, want ErrTimestamp", err)
	}
	over := time.Duration(1<<32) * time.Second
	if err := w.WriteRecord(Record{Time: over, Data: data}); !errors.Is(err, ErrTimestamp) {
		t.Errorf("overflow time error = %v, want ErrTimestamp", err)
	}

	// The largest representable instant must still round-trip exactly.
	max := time.Duration(1<<32-1)*time.Second + 999999*time.Microsecond
	if err := w.WriteRecord(Record{Time: max, Data: data}); err != nil {
		t.Fatalf("boundary time rejected: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time != max {
		t.Errorf("boundary time = %v, want %v", rec.Time, max)
	}
}

// TestReadRecordIntoReusesBuffer pins the zero-alloc read contract the
// live plane's replay source depends on.
func TestReadRecordIntoReusesBuffer(t *testing.T) {
	const frames = 64
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 720)
	for i := 0; i < frames; i++ {
		payload[0] = byte(i)
		if err := w.WriteRecord(Record{Time: time.Duration(i) * time.Millisecond, Data: payload}); err != nil {
			t.Fatal(err)
		}
	}

	raw := buf.Bytes()
	scratch := make([]byte, DefaultSnapLen)
	rdr := bytes.NewReader(raw)
	r, err := NewReader(rdr)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	allocs := testing.AllocsPerRun(frames-1, func() {
		rec, err := r.ReadRecordInto(scratch)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Data[0] != byte(n) || len(rec.Data) != len(payload) {
			t.Fatalf("record %d: first byte %d, len %d", n, rec.Data[0], len(rec.Data))
		}
		if &rec.Data[0] != &scratch[0] {
			t.Fatal("record data does not alias the caller's buffer")
		}
		n++
	})
	if allocs != 0 {
		t.Errorf("ReadRecordInto allocates %.1f times per record", allocs)
	}

	// A buffer too small for the record must still succeed, freshly
	// allocated.
	r2, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r2.ReadRecordInto(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != len(payload) {
		t.Errorf("small-buffer read returned %d bytes, want %d", len(rec.Data), len(payload))
	}
}

func BenchmarkWriteRecord(b *testing.B) {
	frame, err := packet.Encode(packet.Packet{
		Tuple: packet.Tuple{
			Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: packet.TCP,
		},
		Dir: packet.Outgoing, Length: 720,
	})
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteRecord(Record{Time: time.Duration(i), Data: frame}); err != nil {
			b.Fatal(err)
		}
	}
}
