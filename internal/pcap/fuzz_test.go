package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

// FuzzReader drives arbitrary bytes through the pcap reader: inputs may be
// rejected but must never panic and never allocate absurd record buffers.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteRecord(Record{Time: time.Second, Data: []byte{1, 2, 3, 4}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:24])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			rec, err := r.ReadRecord()
			if err != nil {
				return
			}
			if uint32(len(rec.Data)) > r.SnapLen() {
				t.Fatalf("record larger than snaplen: %d", len(rec.Data))
			}
		}
	})
}

// TestReaderRandomMutations complements the fuzz corpus under plain
// `go test`: bit flips and truncations of a valid capture must never
// panic, and reading must terminate.
func TestReaderRandomMutations(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.WriteRecord(Record{
			Time: time.Duration(i) * time.Second,
			Data: bytes.Repeat([]byte{byte(i)}, 40),
		}); err != nil {
			t.Fatal(err)
		}
	}
	valid := buf.Bytes()

	fn := func(pos uint16, mask byte, truncate uint16) bool {
		data := append([]byte(nil), valid...)
		data[int(pos)%len(data)] ^= mask
		data = data[:int(truncate)%(len(data)+1)]
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for i := 0; i < 20; i++ {
			if _, err := r.ReadRecord(); err != nil {
				return errors.Is(err, io.EOF) || err != nil
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
