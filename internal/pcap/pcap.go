// Package pcap reads and writes the classic libpcap capture file format so
// that traces produced by the traffic and attack generators can round-trip
// to disk and into standard tools (tcpdump, Wireshark). Only the features
// the simulator needs are implemented: Ethernet link type, microsecond or
// nanosecond timestamps, both byte orders on read.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// File format constants.
const (
	magicMicro = 0xa1b2c3d4
	magicNano  = 0xa1b23c4d

	versionMajor = 2
	versionMinor = 4

	// LinkTypeEthernet is the only link type the simulator produces.
	LinkTypeEthernet = 1

	globalHeaderLen = 24
	recordHeaderLen = 16

	// DefaultSnapLen is the snapshot length written into new files; it
	// comfortably exceeds any simulated frame.
	DefaultSnapLen = 65535

	// maxRecordLen caps a single record's captured length no matter what
	// snapLen the global header claims. The header is part of the
	// untrusted input, so it cannot be the only bound on the per-record
	// allocation: a crafted file declaring a 4 GiB snapLen must not let a
	// 16-byte record header allocate 4 GiB.
	maxRecordLen = 1 << 20
)

// Errors matchable with errors.Is.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrBadVersion = errors.New("pcap: unsupported version")
	ErrSnapLen    = errors.New("pcap: frame exceeds snapshot length")
	// ErrTimestamp is returned by WriteRecord for times the record header
	// cannot represent: negative offsets, and seconds past the 32-bit
	// field (which used to wrap into garbage timestamps).
	ErrTimestamp = errors.New("pcap: timestamp not representable")
	// ErrOrigLen is returned by WriteRecord when a record claims an
	// original wire length smaller than the bytes it actually carries.
	ErrOrigLen = errors.New("pcap: original length smaller than captured data")
)

// Record is one captured frame with its timestamp. Time is an offset on the
// simulation clock (the epoch is arbitrary).
type Record struct {
	Time time.Duration
	Data []byte
	// OrigLen is the frame's original wire length. Captures taken with a
	// snapshot length shorter than the frame store only the first snapLen
	// bytes but record the true length here; bandwidth accounting must use
	// OrigLen, not len(Data). On write, zero means len(Data).
	OrigLen int
}

// Truncated reports whether the capture stored fewer bytes than the frame
// carried on the wire.
func (r Record) Truncated() bool { return r.OrigLen > len(r.Data) }

// Writer emits a pcap stream. Construct it with NewWriter, which writes the
// global header immediately.
type Writer struct {
	w       io.Writer
	snapLen uint32
	scratch [recordHeaderLen]byte
}

// NewWriter writes a little-endian, microsecond-resolution pcap global
// header to w and returns a Writer for appending records.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicro)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write global header: %w", err)
	}
	return &Writer{w: w, snapLen: DefaultSnapLen}, nil
}

// WriteRecord appends one frame to the stream. rec.Time must fit the
// 32-bit seconds field (0 .. 2^32-1 s); rec.OrigLen of zero means the
// frame was captured whole (origLen = len(Data)).
func (w *Writer) WriteRecord(rec Record) error {
	if len(rec.Data) > int(w.snapLen) {
		return fmt.Errorf("%w: %d > %d", ErrSnapLen, len(rec.Data), w.snapLen)
	}
	usec := rec.Time.Microseconds()
	sec := usec / 1e6
	// The header's seconds field is 32 bits; uint32() used to wrap both a
	// negative offset and an overflowing one into a plausible-looking
	// garbage timestamp.
	if usec < 0 || sec > 0xffffffff {
		return fmt.Errorf("%w: %v", ErrTimestamp, rec.Time)
	}
	orig := rec.OrigLen
	if orig == 0 {
		orig = len(rec.Data)
	}
	if orig < len(rec.Data) {
		return fmt.Errorf("%w: origLen %d < %d captured bytes", ErrOrigLen, orig, len(rec.Data))
	}
	if orig > 0xffffffff {
		return fmt.Errorf("%w: origLen %d overflows the 32-bit field", ErrOrigLen, orig)
	}
	binary.LittleEndian.PutUint32(w.scratch[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(w.scratch[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(w.scratch[8:12], uint32(len(rec.Data)))
	binary.LittleEndian.PutUint32(w.scratch[12:16], uint32(orig))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(rec.Data); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Reader parses a pcap stream. Construct it with NewReader.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nano     bool
	snapLen  uint32
	linkType uint32
	scratch  [recordHeaderLen]byte
}

// NewReader parses the global header from r and returns a Reader positioned
// at the first record. Both byte orders and both timestamp resolutions are
// accepted.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read global header: %w", err)
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicro:
		rd.order = binary.LittleEndian
	case magicLE == magicNano:
		rd.order, rd.nano = binary.LittleEndian, true
	case magicBE == magicMicro:
		rd.order = binary.BigEndian
	case magicBE == magicNano:
		rd.order, rd.nano = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magicLE)
	}
	major := rd.order.Uint16(hdr[4:6])
	if major != versionMajor {
		return nil, fmt.Errorf("%w: %d.%d", ErrBadVersion, major, rd.order.Uint16(hdr[6:8]))
	}
	rd.snapLen = rd.order.Uint32(hdr[16:20])
	rd.linkType = rd.order.Uint32(hdr[20:24])
	return rd, nil
}

// LinkType returns the link-layer type declared in the global header.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen returns the snapshot length declared in the global header.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// ReadRecord returns the next record, or io.EOF at a clean end of stream.
// A stream that ends mid-record yields io.ErrUnexpectedEOF. Each call
// allocates a fresh Data slice; hot loops should use ReadRecordInto.
func (r *Reader) ReadRecord() (Record, error) {
	return r.ReadRecordInto(nil)
}

// ReadRecordInto is ReadRecord with caller-owned storage: when buf has
// capacity for the record's captured bytes, rec.Data aliases buf and the
// read performs no allocation. The returned record (including OrigLen,
// which earlier versions discarded from the header) is valid only until
// the next ReadRecordInto call that reuses the same buffer.
func (r *Reader) ReadRecordInto(buf []byte) (Record, error) {
	var rec Record
	if _, err := io.ReadFull(r.r, r.scratch[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := r.order.Uint32(r.scratch[0:4])
	frac := r.order.Uint32(r.scratch[4:8])
	incl := r.order.Uint32(r.scratch[8:12])
	if incl > r.snapLen || incl > maxRecordLen {
		return rec, fmt.Errorf("%w: record claims %d bytes", ErrSnapLen, incl)
	}
	if r.nano {
		rec.Time = time.Duration(sec)*time.Second + time.Duration(frac)*time.Nanosecond
	} else {
		rec.Time = time.Duration(sec)*time.Second + time.Duration(frac)*time.Microsecond
	}
	rec.OrigLen = int(r.order.Uint32(r.scratch[12:16]))
	if cap(buf) >= int(incl) {
		rec.Data = buf[:incl]
	} else {
		rec.Data = make([]byte, incl)
	}
	if _, err := io.ReadFull(r.r, rec.Data); err != nil {
		return rec, fmt.Errorf("pcap: read record data: %w", err)
	}
	return rec, nil
}
