// Command edge_router reproduces the Figure 1 usage model (experiment
// E12): the same two client networks and the same attack are simulated
// under the two deployment options the paper sketches —
//
//  1. one bitmap filter per edge router (each sees only its own subnet's
//     traffic), and
//  2. a single bitmap filter on the core router aggregating both subnets.
//
// Both placements stop the scan; the core placement trades one larger
// shared bitmap (higher utilization) for half the deployments.
package main

import (
	"fmt"
	"os"
	"time"

	"bitmapfilter"
	"bitmapfilter/internal/attack"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/netsim"
	"bitmapfilter/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "edge_router:", err)
		os.Exit(1)
	}
}

type placement struct {
	name     string
	networks []*netsim.Network
	filters  []bitmapfilter.PacketFilter
	sim      *netsim.Simulator
}

func run() error {
	subnetA := bitmapfilter.PrefixFrom(bitmapfilter.AddrFrom4(10, 10, 0, 0), 24)
	subnetB := bitmapfilter.PrefixFrom(bitmapfilter.AddrFrom4(10, 10, 1, 0), 24)

	newFilter := func() (*bitmapfilter.Filter, error) {
		return bitmapfilter.New(
			bitmapfilter.WithOrder(16),
			bitmapfilter.WithVectors(4),
			bitmapfilter.WithHashes(3),
			bitmapfilter.WithRotateEvery(5*time.Second),
		)
	}

	// Placement 1: a filter on each edge router.
	edge, err := buildEdgePlacement(subnetA, subnetB, newFilter)
	if err != nil {
		return err
	}
	// Placement 2: one filter on the core router that aggregates both
	// subnets (modeled as one network spanning both prefixes).
	corePl, err := buildCorePlacement(subnetA, subnetB, newFilter)
	if err != nil {
		return err
	}

	for _, pl := range []*placement{edge, corePl} {
		if err := exercise(pl, subnetA, subnetB); err != nil {
			return err
		}
		report(pl)
	}

	// Structural version of the same question, on the Figure 1 router
	// tree: one filter on the core router aggregating both edges.
	return runTopology(subnetA, subnetB, newFilter)
}

// runTopology builds internet → core → {edgeA, edgeB} and shows the core
// filter blocking an Internet scan against both customer networks while
// sibling-customer traffic stays inside the core's subtree (unfiltered) —
// the §3.1 trade-off of the aggregated placement.
func runTopology(a, b bitmapfilter.Prefix, newFilter func() (*bitmapfilter.Filter, error)) error {
	sim := netsim.NewSimulator()
	topo, err := netsim.NewTopology(sim)
	if err != nil {
		return err
	}
	coreRtr, err := topo.AddRouter(nil, "core")
	if err != nil {
		return err
	}
	f, err := newFilter()
	if err != nil {
		return err
	}
	coreRtr.SetFilter(bitmapfilter.NewSafe(f))

	for i, subnet := range []bitmapfilter.Prefix{a, b} {
		edge, err := topo.AddRouter(coreRtr, fmt.Sprintf("edge%d", i))
		if err != nil {
			return err
		}
		if err := edge.AttachSubnet(subnet); err != nil {
			return err
		}
	}
	clientA, err := topo.AddHost("clientA", a.Nth(10))
	if err != nil {
		return err
	}
	clientB, err := topo.AddHost("clientB", b.Nth(10))
	if err != nil {
		return err
	}
	delivered := map[bitmapfilter.Addr]int{}
	onPkt := func(_ *netsim.Simulator, self *netsim.Host, _ bitmapfilter.Packet) {
		delivered[self.Addr()]++
	}
	clientA.OnPacket = onPkt
	clientB.OnPacket = onPkt

	// Internet scan against both networks: blocked at the core.
	r := xrand.New(9)
	for i := 0; i < 2000; i++ {
		dst := a.Nth(uint64(r.Intn(256)))
		if i%2 == 1 {
			dst = b.Nth(uint64(r.Intn(256)))
		}
		topo.InjectFromInternet(bitmapfilter.Packet{
			Tuple: bitmapfilter.Tuple{
				Src:     bitmapfilter.Addr(r.Uint32() | 1),
				Dst:     dst,
				SrcPort: uint16(1 + r.Intn(65000)),
				DstPort: uint16(1 + r.Intn(65000)),
				Proto:   bitmapfilter.TCP,
			},
			Flags: bitmapfilter.SYN, Length: 60,
		})
	}
	sim.RunAll()
	scanDelivered := delivered[clientA.Addr()] + delivered[clientB.Addr()]

	// Sibling traffic crosses only the edges, not the core filter.
	sim.After(time.Millisecond, func() {
		clientA.Send(clientB.Addr(), 4000, 445, bitmapfilter.TCP, bitmapfilter.SYN, 60)
	})
	sim.RunAll()
	siblingDelivered := delivered[clientA.Addr()] + delivered[clientB.Addr()] - scanDelivered

	st := coreRtr.Stats()
	fmt.Printf("=== figure-1 tree, filter on core router ===\n")
	fmt.Printf("  internet scan: %d probes, %d dropped at core, %d delivered\n",
		2000, st.InDropped, scanDelivered)
	fmt.Printf("  sibling A->B traffic delivered without crossing the filter: %d\n",
		siblingDelivered)
	return nil
}

func buildEdgePlacement(a, b bitmapfilter.Prefix, newFilter func() (*bitmapfilter.Filter, error)) (*placement, error) {
	sim := netsim.NewSimulator()
	pl := &placement{name: "per-edge filters", sim: sim}
	for _, subnet := range []bitmapfilter.Prefix{a, b} {
		f, err := newFilter()
		if err != nil {
			return nil, err
		}
		net, err := netsim.NewNetwork(sim, []bitmapfilter.Prefix{subnet}, f)
		if err != nil {
			return nil, err
		}
		pl.networks = append(pl.networks, net)
		pl.filters = append(pl.filters, f)
	}
	return pl, nil
}

func buildCorePlacement(a, b bitmapfilter.Prefix, newFilter func() (*bitmapfilter.Filter, error)) (*placement, error) {
	sim := netsim.NewSimulator()
	f, err := newFilter()
	if err != nil {
		return nil, err
	}
	net, err := netsim.NewNetwork(sim, []bitmapfilter.Prefix{a, b}, f)
	if err != nil {
		return nil, err
	}
	return &placement{
		name:     "core aggregation filter",
		sim:      sim,
		networks: []*netsim.Network{net},
		filters:  []bitmapfilter.PacketFilter{f},
	}, nil
}

// exercise runs benign conversations from both subnets plus a random scan
// against them.
func exercise(pl *placement, a, b bitmapfilter.Prefix) error {
	r := xrand.New(7)
	// Attach clients and servers; the core placement has one network,
	// the edge placement one per subnet.
	findNet := func(addr bitmapfilter.Addr) *netsim.Network {
		for _, n := range pl.networks {
			if n.Contains(addr) {
				return n
			}
		}
		return nil
	}

	type pair struct {
		client *netsim.Host
		server *netsim.Host
	}
	var pairs []pair
	for i, subnet := range []bitmapfilter.Prefix{a, b} {
		net := findNet(subnet.Nth(1))
		clientAddr := subnet.Nth(uint64(10 + i))
		client, err := net.AddHost(fmt.Sprintf("client%d", i), clientAddr)
		if err != nil {
			return err
		}
		serverAddr := bitmapfilter.AddrFrom4(198, 51, 100, byte(10+i))
		server, err := net.AddInternetHost(fmt.Sprintf("server%d", i), serverAddr)
		if err != nil {
			return err
		}
		server.OnPacket = func(sim *netsim.Simulator, self *netsim.Host, pkt bitmapfilter.Packet) {
			// Echo one reply per request.
			self.Send(pkt.Tuple.Src, pkt.Tuple.DstPort, pkt.Tuple.SrcPort,
				pkt.Tuple.Proto, bitmapfilter.ACK, 512)
		}
		pairs = append(pairs, pair{client: client, server: server})
	}

	// Benign conversations: 200 request/reply rounds per subnet.
	for round := 0; round < 200; round++ {
		at := time.Duration(round) * 250 * time.Millisecond
		for i, p := range pairs {
			p := p
			port := uint16(40000 + round%1000 + i)
			pl.sim.Schedule(at, func() {
				p.client.Send(p.server.Addr(), port, 443,
					bitmapfilter.TCP, bitmapfilter.ACK, 200)
			})
		}
	}
	pl.sim.RunAll()

	// Attack: one random scan sweep against both subnets.
	scan, err := attack.NewRandomScan(attack.RandomScanConfig{
		Seed:     r.Uint64(),
		Rate:     5000,
		Start:    pl.sim.Now(),
		Duration: 20 * time.Second,
		Subnets:  []bitmapfilter.Prefix{a, b},
	})
	if err != nil {
		return err
	}
	for {
		pkt, ok := scan.Next()
		if !ok {
			break
		}
		pl.sim.Run(pkt.Time)
		if net := findNet(pkt.Tuple.Dst); net != nil {
			net.InjectIncoming(pkt)
		}
	}
	pl.sim.RunAll()
	return nil
}

func report(pl *placement) {
	fmt.Printf("=== %s ===\n", pl.name)
	var agg netsim.EdgeStats
	for i, net := range pl.networks {
		st := net.Stats()
		agg.OutForwarded += st.OutForwarded
		agg.InForwarded += st.InForwarded
		agg.InDropped += st.InDropped
		fmt.Printf("  router %d: out=%d in-passed=%d in-dropped=%d\n",
			i, st.OutForwarded, st.InForwarded, st.InDropped)
	}
	var memory uint64
	var checks filtering.Counters
	for _, f := range pl.filters {
		memory += f.MemoryBytes()
		c := f.Counters()
		checks.InPackets += c.InPackets
		checks.InDropped += c.InDropped
	}
	fmt.Printf("  total: filters=%d memory=%d KiB attack+benign in=%d dropped=%d (%.2f%%)\n\n",
		len(pl.filters), memory/1024, checks.InPackets, checks.InDropped,
		checks.DropRate()*100)
}
