// Command quickstart is the smallest useful bitmap-filter program: it
// builds the paper's default {4×20} filter, walks a benign request/reply
// conversation and an attack probe through it, and demonstrates mark
// expiry and hole punching — using only the public bitmapfilter package.
package main

import (
	"fmt"
	"time"

	"bitmapfilter"
)

func main() {
	// The zero-argument constructor is the paper's configuration:
	// k=4 vectors × 2^20 bits, m=3 hashes, Δt=5 s ⇒ 512 KiB, T_e=20 s.
	f, err := bitmapfilter.New()
	if err != nil {
		panic(err) // unreachable: the default configuration is valid
	}
	fmt.Printf("filter: %s  memory: %d KiB  T_e: %v\n\n",
		f.Name(), f.MemoryBytes()/1024, f.ExpiryTimer())

	client := bitmapfilter.AddrFrom4(10, 0, 0, 42)
	server := bitmapfilter.AddrFrom4(198, 51, 100, 7)
	attacker := bitmapfilter.AddrFrom4(203, 0, 113, 66)

	show := func(what string, pkt bitmapfilter.Packet) {
		v := f.Process(pkt)
		fmt.Printf("%-42s -> %s\n", what, v)
	}

	// 1. The client opens a connection: outgoing packets always pass and
	//    mark the bitmap.
	show("client SYN to server:443 (outgoing)", bitmapfilter.Packet{
		Time: 0,
		Tuple: bitmapfilter.Tuple{
			Src: client, Dst: server,
			SrcPort: 40000, DstPort: 443, Proto: bitmapfilter.TCP,
		},
		Dir: bitmapfilter.Outgoing, Flags: bitmapfilter.SYN, Length: 60,
	})

	// 2. The server's reply matches the mark and is admitted.
	show("server SYN-ACK reply (incoming)", bitmapfilter.Packet{
		Time: 80 * time.Millisecond,
		Tuple: bitmapfilter.Tuple{
			Src: server, Dst: client,
			SrcPort: 443, DstPort: 40000, Proto: bitmapfilter.TCP,
		},
		Dir: bitmapfilter.Incoming, Flags: bitmapfilter.SYN | bitmapfilter.ACK, Length: 60,
	})

	// 3. An attacker probing the same client is dropped: nothing ever
	//    went out toward it.
	show("attacker SYN probe (incoming)", bitmapfilter.Packet{
		Time: 100 * time.Millisecond,
		Tuple: bitmapfilter.Tuple{
			Src: attacker, Dst: client,
			SrcPort: 6666, DstPort: 445, Proto: bitmapfilter.TCP,
		},
		Dir: bitmapfilter.Incoming, Flags: bitmapfilter.SYN, Length: 60,
	})

	// 4. Marks expire after T_e = k·Δt: the same server reply 25 s later
	//    is dropped.
	show("server reply after T_e (incoming)", bitmapfilter.Packet{
		Time: 25 * time.Second,
		Tuple: bitmapfilter.Tuple{
			Src: server, Dst: client,
			SrcPort: 443, DstPort: 40000, Proto: bitmapfilter.TCP,
		},
		Dir: bitmapfilter.Incoming, Flags: bitmapfilter.ACK, Length: 60,
	})

	// 5. Hole punching (§5.1): the client authorizes an inbound
	//    connection (active-mode FTP style) by marking the tuple itself.
	f.PunchHole(client, 20000, server, bitmapfilter.TCP)
	show("server connects to punched port 20000", bitmapfilter.Packet{
		Time: 26 * time.Second,
		Tuple: bitmapfilter.Tuple{
			Src: server, Dst: client,
			SrcPort: 20, DstPort: 20000, Proto: bitmapfilter.TCP,
		},
		Dir: bitmapfilter.Incoming, Flags: bitmapfilter.SYN, Length: 60,
	})

	c := f.Counters()
	fmt.Printf("\ncounters: out=%d in=%d passed=%d dropped=%d (drop rate %.1f%%)\n",
		c.OutPackets, c.InPackets, c.InPassed, c.InDropped, c.DropRate()*100)
	fmt.Printf("utilization: %.6f  penetration probability: %.2e\n",
		f.Utilization(), f.PenetrationProbability())
}
