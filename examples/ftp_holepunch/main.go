// Command ftp_holepunch demonstrates the §5.1 compatibility story
// (experiment E11). Active-mode FTP separates the command and data
// channels: the client opens the command connection, but the *server*
// opens the data connection back to a client port. A bitmap filter drops
// such server-initiated connections — unless the client first "punches a
// hole" by sending one packet with the tuple {client, dataPort, server, x},
// which marks the bitmap exactly like any outgoing packet and admits the
// server's inbound connection until the marks expire.
//
// The demo runs the full scenario twice over the network simulator: once
// without the hole punch (the data connection dies at the edge router) and
// once with it (the transfer succeeds).
package main

import (
	"fmt"
	"os"
	"time"

	"bitmapfilter"
	"bitmapfilter/internal/netsim"
)

const (
	ctrlPort   = 21
	dataSrc    = 20 // active-mode FTP data connections originate from port 20
	clientData = 18765
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftp_holepunch:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, punch := range []bool{false, true} {
		delivered, err := scenario(punch)
		if err != nil {
			return err
		}
		status := "FAILED (dropped at edge router)"
		if delivered {
			status = "succeeded"
		}
		fmt.Printf("hole punch %-5v: active data connection %s\n", punch, status)
	}
	return nil
}

// scenario plays one active-mode FTP exchange and reports whether the
// server's data connection reached the client.
func scenario(punch bool) (bool, error) {
	sim := netsim.NewSimulator()
	subnet := bitmapfilter.PrefixFrom(bitmapfilter.AddrFrom4(10, 10, 0, 0), 24)
	filter, err := bitmapfilter.New(
		bitmapfilter.WithOrder(14),
		bitmapfilter.WithVectors(4),
		bitmapfilter.WithHashes(3),
		bitmapfilter.WithRotateEvery(5*time.Second),
	)
	if err != nil {
		return false, err
	}
	safe := bitmapfilter.NewSafe(filter)
	net, err := netsim.NewNetwork(sim, []bitmapfilter.Prefix{subnet}, safe)
	if err != nil {
		return false, err
	}

	client, err := net.AddHost("ftp-client", subnet.Nth(5))
	if err != nil {
		return false, err
	}
	server, err := net.AddInternetHost("ftp-server", bitmapfilter.AddrFrom4(198, 51, 100, 21))
	if err != nil {
		return false, err
	}

	dataDelivered := false
	client.OnPacket = func(sim *netsim.Simulator, self *netsim.Host, pkt bitmapfilter.Packet) {
		switch {
		case pkt.Tuple.SrcPort == ctrlPort && pkt.Flags.Has(bitmapfilter.SYN|bitmapfilter.ACK):
			// Control connection established. Issue PORT h,p (the
			// command itself is abstract) and optionally punch the
			// hole for the announced data port.
			self.Send(server.Addr(), 41000, ctrlPort, bitmapfilter.TCP,
				bitmapfilter.PSH|bitmapfilter.ACK, 120)
			if punch {
				// §5.1: "the client can send a TCP or UDP packet
				// with the address tuple {c, p, s, x}".
				safe.PunchHole(self.Addr(), clientData, server.Addr(), bitmapfilter.TCP)
			}
		case pkt.Tuple.SrcPort == dataSrc && pkt.Flags.Has(bitmapfilter.SYN):
			// The server's active data connection arrived.
			dataDelivered = true
			self.Send(server.Addr(), clientData, dataSrc, bitmapfilter.TCP,
				bitmapfilter.SYN|bitmapfilter.ACK, 60)
		}
	}
	server.OnPacket = func(sim *netsim.Simulator, self *netsim.Host, pkt bitmapfilter.Packet) {
		switch {
		case pkt.Tuple.DstPort == ctrlPort && pkt.Flags == bitmapfilter.SYN:
			// Accept the control connection.
			self.Send(pkt.Tuple.Src, ctrlPort, pkt.Tuple.SrcPort,
				bitmapfilter.TCP, bitmapfilter.SYN|bitmapfilter.ACK, 60)
		case pkt.Tuple.DstPort == ctrlPort && pkt.Flags.Has(bitmapfilter.PSH):
			// PORT command received: open the active data connection
			// from port 20 to the client's announced port.
			sim.After(20*time.Millisecond, func() {
				self.Send(pkt.Tuple.Src, dataSrc, clientData,
					bitmapfilter.TCP, bitmapfilter.SYN, 60)
			})
		}
	}

	// Kick off: the client opens the control connection.
	sim.After(0, func() {
		client.Send(server.Addr(), 41000, ctrlPort, bitmapfilter.TCP, bitmapfilter.SYN, 60)
	})
	sim.RunAll()
	return dataDelivered, nil
}
