// Command failover demonstrates why the filter supports state snapshots:
// an edge router that restarts with an EMPTY bitmap drops every in-flight
// connection's incoming packets for up to T_e (clients see a blackout),
// while a router restored from a snapshot keeps admitting them.
//
// The demo runs the calibrated trace, "restarts" the filter midway under
// both strategies, and compares the benign drop rate in the window right
// after the restart. The warm path goes through the crash-safe
// checkpoint machinery the bfserve daemon uses — an atomic temp-file +
// fsync + rename save and the restore fallback ladder — rather than an
// in-memory buffer, so the demo exercises the real failover artifact.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bitmapfilter"
	"bitmapfilter/internal/checkpoint"
	"bitmapfilter/internal/trafficgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		restartAt = 2 * time.Minute
		window    = 20 * time.Second // T_e: the worst-case blackout length
	)

	coldNow, cold, err := runScenario(false, restartAt, window)
	if err != nil {
		return err
	}
	warmNow, warm, err := runScenario(true, restartAt, window)
	if err != nil {
		return err
	}

	fmt.Printf("restart at %v; incoming drop rates afterwards:\n\n", restartAt)
	fmt.Printf("                                   first 2s    next %v\n", window)
	fmt.Printf("  cold restart (empty bitmap):     %6.2f%%     %6.2f%%\n", coldNow*100, cold*100)
	fmt.Printf("  warm restart (snapshot restore): %6.2f%%     %6.2f%%\n", warmNow*100, warm*100)
	fmt.Println("\nthe snapshot preserves every live mark, so the restored filter")
	fmt.Println("keeps admitting in-flight connections instead of blacking them out")
	return nil
}

// runScenario replays the trace through a filter, swaps the filter at
// restartAt (optionally carrying state over via a snapshot), and returns
// the incoming drop rates during the first two seconds (where every reply
// belongs to a pre-restart request) and during the full post-restart
// window.
func runScenario(withSnapshot bool, restartAt, window time.Duration) (float64, float64, error) {
	cfg := trafficgen.DefaultConfig()
	cfg.Duration = restartAt + window
	cfg.ConnRate = 25
	gen, err := trafficgen.NewGenerator(cfg)
	if err != nil {
		return 0, 0, err
	}

	filter, err := bitmapfilter.New(bitmapfilter.WithOrder(16))
	if err != nil {
		return 0, 0, err
	}

	var (
		restarted          bool
		inAfter, dropped   uint64
		inEarly, dropEarly uint64
	)
	for {
		pkt, ok := gen.Next()
		if !ok {
			break
		}
		if !restarted && pkt.Time >= restartAt {
			restarted = true
			if withSnapshot {
				// The failing router checkpointed its state to disk
				// (atomically: temp file, fsync, rename); the standby
				// walks the restore ladder and picks it up.
				dir, derr := os.MkdirTemp("", "failover")
				if derr != nil {
					return 0, 0, derr
				}
				defer os.RemoveAll(dir)
				path := filepath.Join(dir, "state.bmf")
				if _, err := checkpoint.Save(path, filter.WriteSnapshot); err != nil {
					return 0, 0, err
				}
				res := checkpoint.Restore(path, func(r io.Reader) error {
					filter, err = bitmapfilter.ReadSnapshot(r)
					return err
				})
				if !res.Outcome.Restored() {
					return 0, 0, fmt.Errorf("restore failed: %+v", res)
				}
			} else {
				// Cold start: the standby comes up empty.
				filter, err = bitmapfilter.New(bitmapfilter.WithOrder(16))
			}
			if err != nil {
				return 0, 0, err
			}
		}
		v := filter.Process(pkt)
		if restarted && pkt.Dir == bitmapfilter.Incoming {
			inAfter++
			if v == bitmapfilter.Drop {
				dropped++
			}
			if pkt.Time < restartAt+2*time.Second {
				inEarly++
				if v == bitmapfilter.Drop {
					dropEarly++
				}
			}
		}
	}
	if inAfter == 0 || inEarly == 0 {
		return 0, 0, fmt.Errorf("no incoming packets after restart")
	}
	return float64(dropEarly) / float64(inEarly), float64(dropped) / float64(inAfter), nil
}
