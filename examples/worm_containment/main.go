// Command worm_containment runs experiment E13: the same random-scanning
// worm epidemic (a Code-Red-style SI model, per the worm literature the
// paper cites) hits two identical client networks — one unprotected, one
// behind a bitmap filter — and the infection outcomes are compared.
//
// The bitmap filter stops inbound worm probes because no inside host ever
// initiated contact with the scanners, so the protected network's
// vulnerable hosts never receive the exploit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitmapfilter/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worm_containment:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration = flag.Duration("duration", 8*time.Minute, "epidemic duration")
		scanRate = flag.Float64("scanrate", 40, "probes per second per infected host")
		vuln     = flag.Int("vulnerable", 20, "vulnerable hosts inside each network")
		seed     = flag.Uint64("seed", 1, "random seed")
		series   = flag.Bool("series", false, "print the inside-infection time series")
	)
	flag.Parse()

	cfg := experiments.DefaultWormConfig()
	cfg.Duration = *duration
	cfg.ScanRate = *scanRate
	cfg.VulnerableHosts = *vuln
	cfg.Seed = *seed

	res, err := experiments.RunWorm(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())

	if *series {
		fmt.Println("\ninside infections over time (t, unprotected, protected):")
		for i := 0; i < res.Unprotected.InfectedSeries.Len(); i++ {
			u := res.Unprotected.InfectedSeries.At(i)
			p := res.Protected.InfectedSeries.At(i)
			if u == 0 && p == 0 {
				continue
			}
			fmt.Printf("  %5.0fs %5.0f %5.0f\n",
				res.Unprotected.InfectedSeries.BucketStart(i), u, p)
		}
	}
	return nil
}
